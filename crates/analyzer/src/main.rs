//! CI entry point: `softcell-analyzer [--root DIR]
//! [--write-metrics-manifest] [--show-suppressed]`.
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/config error.

use std::path::PathBuf;
use std::process::ExitCode;

use softcell_analyzer::{analyze_root, checks::telemetry::render_manifest, config::Config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut write_manifest = false;
    let mut show_suppressed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--write-metrics-manifest" => write_manifest = true,
            "--show-suppressed" => show_suppressed = true,
            "--help" | "-h" => {
                println!(
                    "softcell-analyzer [--root DIR] [--write-metrics-manifest] \
                     [--show-suppressed]\n\nStatic analysis gates for the SoftCell \
                     workspace (DESIGN.md \u{a7}12). Checks: lock-order, seq-block, \
                     wire-panic, atomics-order, telemetry, span-guard."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = match Config::load(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("softcell-analyzer: config error: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = analyze_root(&root, &cfg);

    if write_manifest {
        let path = root.join("analysis").join("metrics_manifest.toml");
        if let Err(e) = std::fs::create_dir_all(path.parent().expect("has parent"))
            .and_then(|_| std::fs::write(&path, render_manifest(&analysis.observed_metrics)))
        {
            eprintln!("softcell-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
        // Re-run against the fresh manifest so the exit status reflects
        // the remaining (non-drift) findings.
        let cfg = match Config::load(&root) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("softcell-analyzer: config error: {e}");
                return ExitCode::from(2);
            }
        };
        return report(analyze_root(&root, &cfg), show_suppressed);
    }
    report(analysis, show_suppressed)
}

fn report(analysis: softcell_analyzer::Analysis, show_suppressed: bool) -> ExitCode {
    let mut unsuppressed = 0usize;
    let mut suppressed = 0usize;
    for f in &analysis.findings {
        if f.suppressed {
            suppressed += 1;
            if show_suppressed {
                println!("{} (suppressed)", f.render());
            }
        } else {
            unsuppressed += 1;
            println!("{}", f.render());
        }
    }
    println!(
        "softcell-analyzer: {} file(s), {} finding(s), {} suppressed",
        analysis.files_scanned, unsuppressed, suppressed
    );
    if unsuppressed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
