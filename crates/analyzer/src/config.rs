//! Analyzer configuration: the manifests under `analysis/`.
//!
//! The build is offline (no `toml` crate), so this module hand-rolls a
//! parser for the TOML subset the manifests actually use: `#` comments,
//! `[section]` / `[section.sub]` headers, and `key = "string"` /
//! `key = ["a", "b", ...]` assignments (arrays may span lines).

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed manifest: section name → key → list of string values.
/// Scalar strings parse as single-element lists; the root (pre-section)
/// scope is the empty section name.
pub type Manifest = BTreeMap<String, BTreeMap<String, Vec<String>>>;

pub fn parse_manifest(src: &str) -> Result<Manifest, String> {
    let mut out: Manifest = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", idx + 1))?;
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("line {}: expected `key = value`", idx + 1));
        };
        let key = line[..eq].trim().to_string();
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line array: keep consuming until brackets balance.
        while value.starts_with('[') && !brackets_balanced(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(format!("line {}: unterminated array", idx + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let values = parse_value(&value).map_err(|e| format!("line {}: {e}", idx + 1))?;
        out.entry(section.clone()).or_default().insert(key, values);
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // `#` inside a quoted string would break this, but no manifest key
    // contains one; keep the parser honest by documenting the limit.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(v: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in v.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for part in split_array(inner) {
            let p = part.trim();
            if p.is_empty() {
                continue;
            }
            items.push(unquote(p)?);
        }
        return Ok(items);
    }
    Ok(vec![unquote(v)?])
}

/// Splits an array body on commas outside quotes.
fn split_array(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn unquote(s: &str) -> Result<String, String> {
    if let Some(q) = s.strip_prefix('"') {
        return q
            .strip_suffix('"')
            .map(|x| x.to_string())
            .ok_or_else(|| format!("unterminated string: {s}"));
    }
    // Bare values (numbers, booleans) come back verbatim.
    Ok(s.to_string())
}

/// One panic-free scope: a file (suffix-matched against relative
/// paths) plus function name globs (`Frame::*`, `serve`, …).
#[derive(Debug, Clone)]
pub struct WireScope {
    pub file: String,
    pub functions: Vec<String>,
}

impl WireScope {
    pub fn matches_file(&self, path: &str) -> bool {
        path == self.file || path.ends_with(&self.file)
    }

    pub fn matches_fn(&self, qual: &str) -> bool {
        self.functions.iter().any(|pat| glob_match(pat, qual))
    }
}

/// `Frame::*` style globs: `*` matches any suffix, no other wildcards.
pub fn glob_match(pat: &str, name: &str) -> bool {
    match pat.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pat == name,
    }
}

/// Full analyzer configuration, assembled from the manifests.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Declared lock acquisition order, outermost first.
    pub lock_order: Vec<String>,
    /// Guard names that hold the Algorithm-1 ticket sequencer.
    pub sequencer_locks: Vec<String>,
    /// Panic-free wire-path scopes.
    pub wire_scopes: Vec<WireScope>,
    /// Relative paths of cross-thread handshake modules audited for
    /// `Ordering::Relaxed`.
    pub atomics_files: Vec<String>,
    /// Expected metric names per kind, from the generated manifest
    /// (None = manifest missing, drift check reports it).
    pub metrics_manifest: Option<MetricsManifest>,
}

#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsManifest {
    pub counters: Vec<String>,
    pub gauges: Vec<String>,
    pub histograms: Vec<String>,
}

impl Config {
    /// Loads every manifest under `<root>/analysis/`. Missing files
    /// leave their checks with empty scope rather than erroring, so
    /// the analyzer degrades gracefully on partial checkouts; the
    /// metrics manifest is the exception (drift check handles it).
    pub fn load(root: &Path) -> Result<Config, String> {
        let dir = root.join("analysis");
        let mut cfg = Config::default();

        if let Ok(src) = std::fs::read_to_string(dir.join("lock_order.toml")) {
            let m = parse_manifest(&src).map_err(|e| format!("lock_order.toml: {e}"))?;
            if let Some(root_sec) = m.get("") {
                cfg.lock_order = root_sec.get("order").cloned().unwrap_or_default();
                cfg.sequencer_locks = root_sec.get("sequencer").cloned().unwrap_or_default();
            }
        }

        if let Ok(src) = std::fs::read_to_string(dir.join("wire_paths.toml")) {
            let m = parse_manifest(&src).map_err(|e| format!("wire_paths.toml: {e}"))?;
            for (section, keys) in &m {
                let Some(_name) = section.strip_prefix("scope.") else {
                    continue;
                };
                let file = keys
                    .get("file")
                    .and_then(|v| v.first())
                    .cloned()
                    .ok_or_else(|| format!("wire_paths.toml: [{section}] missing `file`"))?;
                let functions = keys.get("functions").cloned().unwrap_or_default();
                cfg.wire_scopes.push(WireScope { file, functions });
            }
        }

        if let Ok(src) = std::fs::read_to_string(dir.join("atomics.toml")) {
            let m = parse_manifest(&src).map_err(|e| format!("atomics.toml: {e}"))?;
            if let Some(root_sec) = m.get("") {
                cfg.atomics_files = root_sec.get("files").cloned().unwrap_or_default();
            }
        }

        if let Ok(src) = std::fs::read_to_string(dir.join("metrics_manifest.toml")) {
            let m = parse_manifest(&src).map_err(|e| format!("metrics_manifest.toml: {e}"))?;
            let pick = |sec: &str| -> Vec<String> {
                m.get(sec)
                    .and_then(|k| k.get("names"))
                    .cloned()
                    .unwrap_or_default()
            };
            cfg.metrics_manifest = Some(MetricsManifest {
                counters: pick("counters"),
                gauges: pick("gauges"),
                histograms: pick("histograms"),
            });
        }

        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_multiline_arrays() {
        let src = r#"
# top comment
order = ["engine", "ues"] # trailing
sequencer = ["engine"]

[scope.codec]
file = "crates/ctlchan/src/codec.rs"
functions = [
    "Frame::*",
    "Reader::*",
]
"#;
        let m = parse_manifest(src).unwrap();
        assert_eq!(m[""]["order"], vec!["engine", "ues"]);
        assert_eq!(
            m["scope.codec"]["file"],
            vec!["crates/ctlchan/src/codec.rs"]
        );
        assert_eq!(m["scope.codec"]["functions"], vec!["Frame::*", "Reader::*"]);
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("Frame::*", "Frame::check"));
        assert!(glob_match("serve", "serve"));
        assert!(!glob_match("serve", "serve_rdv"));
        assert!(!glob_match("Frame::*", "Reader::u8"));
    }
}
