//! Barrier fence semantics.
//!
//! OpenFlow's barrier contract, which `serve` inherits from strict
//! arrival-order processing: every message sent before a
//! barrier-request is fully processed before the barrier-reply is
//! sent — so once the client observes the reply, all earlier flow-mods
//! have been applied, in order.

use std::sync::{Arc, Mutex};

use softcell_ctlchan::{loopback_pair, serve, CtlChannel, Message, WireFlowMod, WirePathTags};
use softcell_policy::clause::ClauseId;
use softcell_types::{BaseStationId, PolicyTag, PortNo};

fn flow_mod(i: u16) -> WireFlowMod {
    WireFlowMod {
        bs: BaseStationId(7),
        clause: ClauseId(i),
        tags: WirePathTags {
            uplink_entry: PolicyTag(i),
            uplink_exit: PolicyTag(i),
            downlink_final: PolicyTag(i),
            access_out_port: PortNo(1),
            qos: None,
        },
    }
}

#[test]
fn flow_mods_before_barrier_are_applied_before_the_reply() {
    let (client_end, server_end) = loopback_pair();
    // the "switch state" flow-mods apply to: clause ids, in apply order
    let applied: Arc<Mutex<Vec<u16>>> = Arc::new(Mutex::new(Vec::new()));
    let applied_in_handler = Arc::clone(&applied);
    let server = std::thread::spawn(move || {
        serve(
            server_end,
            || 0,
            move |msg, _ctx| {
                if let Message::FlowMod(mods) = msg {
                    let mut state = applied_in_handler.lock().unwrap();
                    for m in mods {
                        state.push(m.clause.0);
                    }
                }
                None
            },
        )
        .unwrap();
    });

    let mut chan = CtlChannel::new(client_end);
    const ROUNDS: u16 = 20;
    const PER_BATCH: u16 = 5;
    for round in 0..ROUNDS {
        // a burst of fire-and-forget flow-mod batches...
        for batch in 0..PER_BATCH {
            let base = round * PER_BATCH * 2 + batch * 2;
            chan.send(&Message::FlowMod(vec![flow_mod(base), flow_mod(base + 1)]))
                .unwrap();
        }
        // ...then the fence: returning means everything above is applied
        chan.barrier().unwrap();
        let state = applied.lock().unwrap();
        let expected = (round + 1) * PER_BATCH * 2;
        assert_eq!(
            state.len(),
            usize::from(expected),
            "round {round}: barrier replied before all flow-mods applied"
        );
        assert!(
            state.iter().copied().eq(0..expected),
            "round {round}: flow-mods applied out of order"
        );
    }

    drop(chan);
    server.join().unwrap();
}
