//! Codec round-trip property tests.
//!
//! Every message variant, built from randomized fields (including the
//! boundary values the generators bias towards: zero, max, empty and
//! near-limit payload lengths), must encode to a frame that validates
//! and parses back to an equal message under its original xid — and a
//! frame corrupted by truncation must be rejected, never panic.

use std::borrow::Cow;

use proptest::prelude::*;

use softcell_ctlchan::{
    ChannelStats, Frame, Message, PacketIn, WireClassifier, WireFlowMod, WirePathTags,
    WireUeRecord, HEADER_LEN,
};
use softcell_packet::Protocol;
use softcell_policy::clause::QosClass;
use softcell_policy::{AccessControl, ApplicationType, ClassifierEntry};
use softcell_types::{BaseStationId, Error, PolicyTag, PortNo, SimTime, UeId, UeImsi};

/// Deterministically expands a few random scalars into one message of
/// the requested kind, exercising every variant and option arm.
fn build_message(
    kind: u8,
    a: u64,
    b: u32,
    c: u16,
    d: u8,
    payload: &[u8],
    batch: usize,
) -> Message<'static> {
    let record = WireUeRecord {
        imsi: UeImsi(a),
        permanent_ip: std::net::Ipv4Addr::from(b),
        bs: BaseStationId(b ^ 0xffff),
        ue_id: UeId(c),
        since: SimTime(a.rotate_left(17)),
    };
    let tags = |i: u16| WirePathTags {
        uplink_entry: PolicyTag(c.wrapping_add(i)),
        uplink_exit: PolicyTag(c.wrapping_mul(3).wrapping_add(i)),
        downlink_final: PolicyTag(c.wrapping_sub(i)),
        access_out_port: PortNo(i),
        qos: if (d ^ i as u8) & 1 == 0 {
            None
        } else {
            Some(QosClass {
                dscp: d & 0x3f,
                priority: d >> 5,
            })
        },
    };
    match kind {
        0 => Message::Hello {
            version: d,
            peer: b,
        },
        1 => Message::EchoRequest(Cow::Owned(payload.to_vec())),
        2 => Message::EchoReply(Cow::Owned(payload.to_vec())),
        3 => {
            let text: String = payload.iter().map(|&x| char::from(b'a' + x % 26)).collect();
            Message::from_error(&Error::Exhausted(text)).into_static()
        }
        4 => Message::PacketIn(match d % 3 {
            0 => PacketIn::Attach {
                imsi: UeImsi(a),
                bs: BaseStationId(b),
                ue_id: UeId(c),
                now: SimTime(a >> 3),
            },
            1 => PacketIn::PathRequest {
                bs: BaseStationId(b),
                clause: softcell_policy::clause::ClauseId(c),
            },
            _ => PacketIn::Detach { imsi: UeImsi(a) },
        }),
        5 => {
            let classifier = if d & 1 == 0 {
                None
            } else {
                let entries = (0..batch)
                    .map(|i| {
                        let x = payload.get(i).copied().unwrap_or(i as u8);
                        ClassifierEntry {
                            proto: match x % 3 {
                                0 => None,
                                1 => Some(Protocol::Tcp),
                                _ => Some(Protocol::Udp),
                            },
                            dst_port: if x & 4 == 0 {
                                None
                            } else {
                                Some(c.wrapping_add(x as u16))
                            },
                            app: ApplicationType::ALL[x as usize % ApplicationType::ALL.len()],
                            clause: softcell_policy::clause::ClauseId(c.wrapping_add(i as u16)),
                            access: if x & 8 == 0 {
                                AccessControl::Allow
                            } else {
                                AccessControl::Deny
                            },
                        }
                    })
                    .collect();
                let fallback = if d & 2 == 0 {
                    None
                } else {
                    Some((softcell_policy::clause::ClauseId(c), AccessControl::Allow))
                };
                Some(WireClassifier { entries, fallback })
            };
            Message::ClassifierReply { record, classifier }
        }
        6 => Message::FlowMod(
            (0..batch)
                .map(|i| WireFlowMod {
                    bs: BaseStationId(b.wrapping_add(i as u32)),
                    clause: softcell_policy::clause::ClauseId(c.wrapping_mul(i as u16 | 1)),
                    tags: tags(i as u16),
                })
                .collect(),
        ),
        7 => Message::BarrierRequest,
        8 => Message::BarrierReply,
        9 => Message::StatsRequest,
        10 => Message::StatsReply(ChannelStats {
            served: a,
            tx_msgs: a ^ u64::from(b),
            rx_msgs: u64::from(b),
            tx_bytes: a.rotate_right(9),
            rx_bytes: u64::from(c),
        }),
        11 => Message::FlowModBatch {
            shard: c,
            seq: b,
            groups: (0..batch.min(8))
                .map(|g| softcell_ctlchan::WireBatchGroup {
                    bs: BaseStationId(b.wrapping_add(g as u32)),
                    barrier: (d as usize + g) & 1 == 0,
                    mods: (0..g % 3)
                        .map(|i| WireFlowMod {
                            bs: BaseStationId(b.wrapping_add(g as u32)),
                            clause: softcell_policy::clause::ClauseId(c.wrapping_add(i as u16)),
                            tags: tags(i as u16),
                        })
                        .collect(),
                })
                .collect(),
        },
        12 => Message::Replicate {
            origin: b,
            epoch: a.rotate_left(5),
            index: a,
            commit: a.saturating_sub(u64::from(c)),
            payload: Cow::Owned(payload.to_vec()),
        },
        13 => Message::ReplicateAck {
            origin: b,
            epoch: a,
            index: a ^ u64::from(b),
            accepted: d & 1 == 0,
            have_index: u64::from(c),
        },
        14 => Message::EpochChange {
            epoch: a | 1,
            live: (0..batch.min(16))
                .map(|i| (d as usize + i) & 1 == 0)
                .collect(),
        },
        _ => Message::SnapshotTransfer {
            origin: b,
            epoch: a | 1,
            applied: (0..batch.min(16))
                .map(|i| a.wrapping_add(i as u64))
                .collect(),
            payload: Cow::Owned(payload.to_vec()),
        },
    }
}

proptest! {
    #[test]
    fn every_variant_round_trips(
        kind in 0u8..16,
        a in any::<u64>(),
        b in any::<u32>(),
        c in any::<u16>(),
        d in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        batch in 0usize..40,
        xid in any::<u32>(),
    ) {
        let msg = build_message(kind, a, b, c, d, &payload, batch);
        let buf = msg.encode(xid);
        let frame = Frame::new_checked(buf.as_slice()).unwrap();
        prop_assert_eq!(frame.xid(), xid);
        prop_assert_eq!(frame.msg_type(), msg.msg_type());
        prop_assert_eq!(frame.total_len(), buf.len());
        let decoded = frame.message().unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_frames_are_rejected_not_panicking(
        kind in 0u8..16,
        a in any::<u64>(),
        b in any::<u32>(),
        c in any::<u16>(),
        d in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<u16>(),
    ) {
        let msg = build_message(kind, a, b, c, d, &payload, 3);
        let buf = msg.encode(1);
        let cut = cut as usize % buf.len();
        // a prefix is never a valid frame: either the header is gone or
        // the length field disagrees with the buffer
        prop_assert!(Frame::new_checked(&buf[..cut]).is_err());
    }

    #[test]
    fn payload_corruption_never_panics(
        kind in 0u8..16,
        a in any::<u64>(),
        b in any::<u32>(),
        c in any::<u16>(),
        d in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        at in any::<u16>(),
        flip in 1u8..=255,
    ) {
        let msg = build_message(kind, a, b, c, d, &payload, 3);
        let mut buf = msg.encode(1);
        if buf.len() > HEADER_LEN {
            let at = HEADER_LEN + at as usize % (buf.len() - HEADER_LEN);
            buf[at] ^= flip;
        }
        if let Ok(frame) = Frame::new_checked(buf.as_slice()) {
            // decoding corrupt payloads may fail, but must not panic
            let _ = frame.message();
        }
    }
}
