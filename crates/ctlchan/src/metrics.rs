//! Global telemetry handles for the control channel.
//!
//! Transports and channels are created in large numbers (one per agent
//! connection, wrapped and rewrapped across reconnects), so their
//! metrics live on [`Registry::global`] rather than per instance: every
//! frame moved by any leaf transport in the process lands in one
//! `softcell_ctlchan_frames_{tx,rx}_total{type=...}` family. Handles
//! are interned once into a [`OnceLock`]; the hot path is an array
//! index plus one relaxed `fetch_add`.

use std::sync::{Arc, OnceLock};

use softcell_telemetry::{Counter, Registry};

use crate::codec::field;

/// Display names for each wire message type, indexed by the type byte;
/// the final entry collects unknown types seen on the wire.
pub const MSG_TYPE_NAMES: [&str; 13] = [
    "hello",
    "echo_request",
    "echo_reply",
    "error",
    "packet_in",
    "classifier_reply",
    "flow_mod",
    "barrier_request",
    "barrier_reply",
    "stats_request",
    "stats_reply",
    "flow_mod_batch",
    "other",
];

/// Interned counter handles for the whole crate.
pub struct CtlchanMetrics {
    /// Frames actually handed to a leaf transport, by message type.
    pub frames_tx: [Arc<Counter>; MSG_TYPE_NAMES.len()],
    /// Frames delivered by a leaf transport, by message type.
    pub frames_rx: [Arc<Counter>; MSG_TYPE_NAMES.len()],
    /// Same-xid resends issued by `request_with_retry`.
    pub retries: Arc<Counter>,
    /// Request attempts that elapsed their deadline.
    pub timeouts: Arc<Counter>,
    /// Server-side replay-cache hits (retries absorbed without
    /// re-applying).
    pub dedup_hits: Arc<Counter>,
    /// Frames discarded by fault injection.
    pub fault_dropped: Arc<Counter>,
    /// Frames duplicated by fault injection.
    pub fault_duplicated: Arc<Counter>,
    /// Frames delayed by fault injection.
    pub fault_delayed: Arc<Counter>,
    /// Mid-frame disconnects injected by fault injection.
    pub fault_disconnects: Arc<Counter>,
    /// Frames sent carrying a trace-context trailer.
    pub traced_tx: Arc<Counter>,
    /// Frames received carrying a trace-context trailer.
    pub traced_rx: Arc<Counter>,
}

/// The crate's interned metric handles (registered on first use).
pub fn metrics() -> &'static CtlchanMetrics {
    static METRICS: OnceLock<CtlchanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = Registry::global();
        let family = |name: &str| {
            std::array::from_fn(|i| reg.counter_with(name, &format!("type={}", MSG_TYPE_NAMES[i])))
        };
        CtlchanMetrics {
            frames_tx: family("softcell_ctlchan_frames_tx_total"),
            frames_rx: family("softcell_ctlchan_frames_rx_total"),
            retries: reg.counter("softcell_ctlchan_retries_total"),
            timeouts: reg.counter("softcell_ctlchan_timeouts_total"),
            dedup_hits: reg.counter("softcell_ctlchan_dedup_hits_total"),
            fault_dropped: reg.counter("softcell_ctlchan_fault_dropped_total"),
            fault_duplicated: reg.counter("softcell_ctlchan_fault_duplicated_total"),
            fault_delayed: reg.counter("softcell_ctlchan_fault_delayed_total"),
            fault_disconnects: reg.counter("softcell_ctlchan_fault_disconnects_total"),
            traced_tx: reg.counter("softcell_ctlchan_traced_frames_tx_total"),
            traced_rx: reg.counter("softcell_ctlchan_traced_frames_rx_total"),
        }
    })
}

/// Index into the per-type families for a raw frame (header byte 1).
#[inline]
pub(crate) fn type_index(frame: &[u8]) -> usize {
    let t = frame.get(field::MSG_TYPE).copied().unwrap_or(u8::MAX) as usize;
    t.min(MSG_TYPE_NAMES.len() - 1)
}

/// Whether a raw frame carries a trace-context trailer (header flag
/// word has [`crate::codec::FLAG_TRACED`] set).
#[inline]
pub(crate) fn frame_is_traced(frame: &[u8]) -> bool {
    frame
        .get(field::RESERVED)
        .and_then(|b| <[u8; 2]>::try_from(b).ok())
        .map(u16::from_be_bytes)
        .is_some_and(|f| f & crate::codec::FLAG_TRACED != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_types_fold_into_other() {
        assert_eq!(type_index(&[0, 11, 0, 0]), 11);
        assert_eq!(type_index(&[0, 200, 0, 0]), MSG_TYPE_NAMES.len() - 1);
        assert_eq!(type_index(&[]), MSG_TYPE_NAMES.len() - 1);
    }
}
