//! Wire format: frames and messages.
//!
//! Every control-channel exchange is one *frame*: a fixed 12-byte header
//! followed by a message-type-specific payload. The header mirrors
//! OpenFlow's `ofp_header` (version, type, length, transaction id) with a
//! 32-bit length so classifier and flow-mod batches are not capped at
//! 64 KB:
//!
//! ```text
//!  0        1        2                 4                 8                12
//! +--------+--------+-----------------+-----------------+----------------+
//! | version| type   | reserved (0)    | length (u32 BE) | xid (u32 BE)   |
//! +--------+--------+-----------------+-----------------+----------------+
//! | payload ... (length - 12 bytes)                                      |
//! ```
//!
//! `length` covers the whole frame including the header. The `xid`
//! correlates replies with requests: a reply always carries the xid of
//! the request it answers; unsolicited messages (flow-mod pushes) use
//! xid 0.
//!
//! [`Frame`] wraps a byte buffer in the smoltcp style used by
//! `softcell-packet`: `new_checked` validates once, accessors then read
//! fixed offsets, and [`Frame::message`] decodes the payload *borrowing*
//! from the buffer — echo payloads and error strings are zero-copy
//! (`Cow::Borrowed`) on the decode path.

use std::borrow::Cow;
use std::net::Ipv4Addr;

use softcell_packet::Protocol;
use softcell_policy::clause::{AccessControl, ClauseId, QosClass};
use softcell_policy::{ApplicationType, ClassifierEntry};
use softcell_telemetry::TraceContext;
use softcell_types::{BaseStationId, Error, PolicyTag, PortNo, Result, SimTime, UeId, UeImsi};

/// Protocol version this crate speaks.
pub const VERSION: u8 = 1;

/// Frame header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame (sanity check against corrupt length fields).
pub const MAX_FRAME: usize = 1 << 20;

/// Flag bit in the reserved header bytes: the frame carries a 16-byte
/// trace-context trailer after the payload (see [`Frame::trace_context`]).
/// Untraced frames keep reserved = 0, byte-identical to version 1
/// without tracing; receivers ignore unknown flag bits.
pub const FLAG_TRACED: u16 = 0x8000;

/// Length of the trace-context trailer: trace id (u64 BE) then parent
/// span id (u64 BE).
pub const TRACE_TRAILER_LEN: usize = 16;

/// Field offsets within the frame header.
pub(crate) mod field {
    pub const VERSION: usize = 0;
    pub const MSG_TYPE: usize = 1;
    pub const RESERVED: std::ops::Range<usize> = 2..4;
    pub const LENGTH: std::ops::Range<usize> = 4..8;
    pub const XID: std::ops::Range<usize> = 8..12;
}

/// A control-channel frame backed by a byte buffer.
#[derive(Clone, PartialEq, Eq)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

/// Bounds-checked header field reads: a short buffer surfaces as
/// `Error::Malformed`, never a panic (wire-panic invariant, DESIGN.md §12).
fn header_u8(d: &[u8], i: usize) -> Result<u8> {
    d.get(i)
        .copied()
        .ok_or_else(|| Error::Malformed(format!("header truncated at byte {i}")))
}

fn header_u32(d: &[u8], r: std::ops::Range<usize>) -> Result<u32> {
    d.get(r.clone())
        .and_then(|b| b.try_into().ok())
        .map(u32::from_be_bytes)
        .ok_or_else(|| Error::Malformed(format!("header truncated at bytes {r:?}")))
}

/// `Reader::take(n)` returned a slice of the wrong width — impossible
/// by construction, but decode paths return errors rather than trust it.
fn width_err(what: &'static str) -> Error {
    Error::Malformed(format!("internal reader width mismatch decoding {what}"))
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wraps a buffer without validation. Use on buffers this code just
    /// emitted.
    pub const fn new_unchecked(buffer: T) -> Self {
        Frame { buffer }
    }

    /// Wraps and validates a buffer: header present, version supported,
    /// length field consistent with the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let frame = Frame { buffer };
        frame.check()?;
        Ok(frame)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Malformed(format!(
                "buffer {} bytes < {HEADER_LEN}-byte ctlchan header",
                data.len()
            )));
        }
        let version = header_u8(data, field::VERSION)?;
        if version != VERSION {
            return Err(Error::Malformed(format!(
                "ctlchan version {version} != {VERSION}"
            )));
        }
        let len = header_u32(data, field::LENGTH)? as usize;
        if !(HEADER_LEN..=MAX_FRAME).contains(&len) {
            return Err(Error::Malformed(format!("frame length {len} out of range")));
        }
        if len != data.len() {
            return Err(Error::Malformed(format!(
                "frame length {len} != buffer {}",
                data.len()
            )));
        }
        let flags = data
            .get(field::RESERVED)
            .and_then(|b| b.try_into().ok())
            .map(u16::from_be_bytes)
            .unwrap_or(0);
        if flags & FLAG_TRACED != 0 && len < HEADER_LEN + TRACE_TRAILER_LEN {
            return Err(Error::Malformed(format!(
                "traced frame length {len} too short for {TRACE_TRAILER_LEN}-byte trailer"
            )));
        }
        Ok(())
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Protocol version byte.
    pub fn version(&self) -> u8 {
        // softcell-lint: allow(wire-panic) -- header length validated by new_checked
        self.buffer.as_ref()[field::VERSION]
    }

    /// Message type code.
    pub fn msg_type(&self) -> u8 {
        // softcell-lint: allow(wire-panic) -- header length validated by new_checked
        self.buffer.as_ref()[field::MSG_TYPE]
    }

    /// The reserved header bytes, now a flag word. Senders write zero
    /// unless a defined flag applies ([`FLAG_TRACED`]); receivers must
    /// ignore unknown bits (room for future flags without a version
    /// bump).
    pub fn reserved(&self) -> u16 {
        // softcell-lint: allow(wire-panic) -- header length validated by new_checked
        let b = &self.buffer.as_ref()[field::RESERVED];
        // softcell-lint: allow(wire-panic) -- RESERVED is a fixed 2-byte header range
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Whether the frame carries a trace-context trailer.
    pub fn is_traced(&self) -> bool {
        self.reserved() & FLAG_TRACED != 0
    }

    /// The trace context from the trailer, or [`TraceContext::NONE`]
    /// for untraced frames.
    pub fn trace_context(&self) -> TraceContext {
        if !self.is_traced() {
            return TraceContext::NONE;
        }
        let d = self.buffer.as_ref();
        let Some(tail) = d
            .len()
            .checked_sub(TRACE_TRAILER_LEN)
            .filter(|&s| s >= HEADER_LEN)
            .and_then(|s| d.get(s..))
        else {
            return TraceContext::NONE;
        };
        let word = |r: std::ops::Range<usize>| {
            tail.get(r)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_be_bytes)
                .unwrap_or(0)
        };
        TraceContext {
            trace_id: word(0..8),
            parent: word(8..16),
        }
    }

    /// Total frame length from the header.
    pub fn total_len(&self) -> usize {
        let d = self.buffer.as_ref();
        header_u32(d, field::LENGTH).unwrap_or(0) as usize
    }

    /// Transaction id.
    pub fn xid(&self) -> u32 {
        let d = self.buffer.as_ref();
        header_u32(d, field::XID).unwrap_or(0)
    }

    /// The message payload after the header, excluding the
    /// trace-context trailer when present.
    pub fn payload(&self) -> &[u8] {
        let d = self.buffer.as_ref();
        let end = if self.is_traced() {
            d.len().saturating_sub(TRACE_TRAILER_LEN).max(HEADER_LEN)
        } else {
            d.len()
        };
        d.get(HEADER_LEN..end).unwrap_or(&[])
    }

    /// Decodes the payload into a [`Message`] borrowing from the buffer.
    pub fn message(&self) -> Result<Message<'_>> {
        Message::parse(self.msg_type(), self.payload())
    }
}

impl<T: AsRef<[u8]>> std::fmt::Debug for Frame<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Frame {{ v{}, type {}, len {}, xid {} }}",
            self.version(),
            self.msg_type(),
            self.total_len(),
            self.xid()
        )
    }
}

/// Message type codes (the header's `type` byte).
pub mod msg_type {
    /// Version negotiation, first frame in each direction.
    pub const HELLO: u8 = 0;
    /// Liveness probe.
    pub const ECHO_REQUEST: u8 = 1;
    /// Liveness answer, echoing the request payload.
    pub const ECHO_REPLY: u8 = 2;
    /// Request failed; carries a structured error.
    pub const ERROR: u8 = 3;
    /// Agent → controller event (attach, path request, detach).
    pub const PACKET_IN: u8 = 4;
    /// Controller → agent: UE record plus optional packet classifier.
    pub const CLASSIFIER_REPLY: u8 = 5;
    /// Controller → agent: batch of tag-cache programming entries.
    pub const FLOW_MOD: u8 = 6;
    /// Fence: process everything before this, then reply.
    pub const BARRIER_REQUEST: u8 = 7;
    /// The fence acknowledgement.
    pub const BARRIER_REPLY: u8 = 8;
    /// Ask the peer for its connection counters.
    pub const STATS_REQUEST: u8 = 9;
    /// The counters.
    pub const STATS_REPLY: u8 = 10;
    /// Controller → agent: barrier-delimited per-station groups of
    /// tag-cache programming entries from one sharded-controller ticket.
    pub const FLOW_MOD_BATCH: u8 = 11;
    /// Controller → controller: one replicated-log record shipped for
    /// quorum acknowledgement.
    pub const REPLICATE: u8 = 12;
    /// Controller → controller: the per-record acknowledgement.
    pub const REPLICATE_ACK: u8 = 13;
    /// Controller → controller: a membership/epoch view, pushed on
    /// failover; the reply echoes the receiver's (possibly newer) view.
    pub const EPOCH_CHANGE: u8 = 14;
    /// Controller → controller: a full-state snapshot for a peer that
    /// has fallen off the tail of the log.
    pub const SNAPSHOT_TRANSFER: u8 = 15;
}

/// Wire form of an [`Error`]: a category code plus the message text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// [`Error::Config`]
    Config,
    /// [`Error::Range`]
    Range,
    /// [`Error::Parse`]
    Parse,
    /// [`Error::Exhausted`]
    Exhausted,
    /// [`Error::NotFound`]
    NotFound,
    /// [`Error::InvalidState`]
    InvalidState,
    /// [`Error::Malformed`]
    Malformed,
    /// [`Error::NoPath`]
    NoPath,
    /// [`Error::Timeout`]
    Timeout,
}

impl ErrorCode {
    /// The category of an error.
    pub fn of(e: &Error) -> ErrorCode {
        match e {
            Error::Config(_) => ErrorCode::Config,
            Error::Range(_) => ErrorCode::Range,
            Error::Parse(_) => ErrorCode::Parse,
            Error::Exhausted(_) => ErrorCode::Exhausted,
            Error::NotFound(_) => ErrorCode::NotFound,
            Error::InvalidState(_) => ErrorCode::InvalidState,
            Error::Malformed(_) => ErrorCode::Malformed,
            Error::NoPath(_) => ErrorCode::NoPath,
            Error::Timeout(_) => ErrorCode::Timeout,
        }
    }

    /// Reconstructs the [`Error`] this code and message describe.
    pub fn to_error(self, message: &str) -> Error {
        let m = message.to_string();
        match self {
            ErrorCode::Config => Error::Config(m),
            ErrorCode::Range => Error::Range(m),
            ErrorCode::Parse => Error::Parse(m),
            ErrorCode::Exhausted => Error::Exhausted(m),
            ErrorCode::NotFound => Error::NotFound(m),
            ErrorCode::InvalidState => Error::InvalidState(m),
            ErrorCode::Malformed => Error::Malformed(m),
            ErrorCode::NoPath => Error::NoPath(m),
            ErrorCode::Timeout => Error::Timeout(m),
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Config => 0,
            ErrorCode::Range => 1,
            ErrorCode::Parse => 2,
            ErrorCode::Exhausted => 3,
            ErrorCode::NotFound => 4,
            ErrorCode::InvalidState => 5,
            ErrorCode::Malformed => 6,
            ErrorCode::NoPath => 7,
            ErrorCode::Timeout => 8,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode> {
        Ok(match v {
            0 => ErrorCode::Config,
            1 => ErrorCode::Range,
            2 => ErrorCode::Parse,
            3 => ErrorCode::Exhausted,
            4 => ErrorCode::NotFound,
            5 => ErrorCode::InvalidState,
            6 => ErrorCode::Malformed,
            7 => ErrorCode::NoPath,
            8 => ErrorCode::Timeout,
            _ => return Err(Error::Malformed(format!("unknown error code {v}"))),
        })
    }
}

/// An agent → controller event (OpenFlow's packet-in, specialized to the
/// three punts a SoftCell agent makes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketIn {
    /// A UE attached at this agent's station.
    Attach {
        /// Subscriber identity.
        imsi: UeImsi,
        /// The station it attached at.
        bs: BaseStationId,
        /// The local id the agent assigned.
        ue_id: UeId,
        /// Attach time.
        now: SimTime,
    },
    /// Tag-cache miss: the first flow of a clause at this station.
    PathRequest {
        /// Origin station.
        bs: BaseStationId,
        /// The governing clause.
        clause: ClauseId,
    },
    /// A UE detached.
    Detach {
        /// Subscriber identity.
        imsi: UeImsi,
    },
}

/// Wire form of a controller-side UE record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireUeRecord {
    /// Subscriber identity.
    pub imsi: UeImsi,
    /// Permanent (DHCP) address.
    pub permanent_ip: Ipv4Addr,
    /// Current base station.
    pub bs: BaseStationId,
    /// Local UE id there.
    pub ue_id: UeId,
    /// When the UE last attached or moved.
    pub since: SimTime,
}

/// Wire form of the tags realizing one (clause, station) policy path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WirePathTags {
    /// Tag embedded in the uplink source port at the access edge.
    pub uplink_entry: PolicyTag,
    /// Tag on the packet when it exits the gateway.
    pub uplink_exit: PolicyTag,
    /// Tag arriving back at the access switch on the downlink.
    pub downlink_final: PolicyTag,
    /// First-hop output port of the uplink microflow rule.
    pub access_out_port: PortNo,
    /// QoS class of the governing clause, if any.
    pub qos: Option<QosClass>,
}

/// One tag-cache programming entry: "flows of `clause` at `bs` use these
/// tags". The controller pushes these in reply to path requests (and may
/// batch proactive entries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireFlowMod {
    /// The station whose tag cache this programs.
    pub bs: BaseStationId,
    /// The clause.
    pub clause: ClauseId,
    /// The tags.
    pub tags: WirePathTags,
}

/// One station's slice of a flow-mod batch: the entries programming
/// that station's tag cache, with a barrier bit fencing the group — the
/// receiver must finish applying the group's entries before touching
/// anything that follows. Mirrors the controller's per-switch
/// `SwitchBatch` emission: entries for one station are in controller
/// order, so the trailing barrier is sufficient for consistency (see
/// `softcell-controller::ops::batch_by_switch`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireBatchGroup {
    /// The station whose tag cache this group programs.
    pub bs: BaseStationId,
    /// Fence after this group.
    pub barrier: bool,
    /// The entries, in controller emission order.
    pub mods: Vec<WireFlowMod>,
}

/// Wire form of a per-UE packet classifier.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WireClassifier {
    /// Signature entries.
    pub entries: Vec<ClassifierEntry>,
    /// Fallback clause for unrecognized flows.
    pub fallback: Option<(ClauseId, AccessControl)>,
}

/// Connection counters as carried by a stats reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Application-level requests served (controller side; 0 for agents).
    pub served: u64,
    /// Frames sent by the replying peer.
    pub tx_msgs: u64,
    /// Frames received by the replying peer.
    pub rx_msgs: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

/// A decoded control-channel message. Byte and string payloads borrow
/// from the frame on decode (`Cow::Borrowed`) and own their data when
/// built for sending (`Cow::Owned`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message<'a> {
    /// Version negotiation; `peer` identifies the sender (base-station id
    /// for agents, `u32::MAX` for the controller).
    Hello {
        /// Highest protocol version the sender speaks.
        version: u8,
        /// Sender identity.
        peer: u32,
    },
    /// Liveness probe with an arbitrary payload.
    EchoRequest(Cow<'a, [u8]>),
    /// Echoes the probe payload back.
    EchoReply(Cow<'a, [u8]>),
    /// A failed request: category plus message text.
    Error {
        /// Error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: Cow<'a, str>,
    },
    /// Agent → controller event.
    PacketIn(PacketIn),
    /// Controller → agent: the record (and, for attaches, the compiled
    /// classifier) answering a packet-in.
    ClassifierReply {
        /// The controller-side UE record.
        record: WireUeRecord,
        /// The compiled classifier (absent on detach replies).
        classifier: Option<WireClassifier>,
    },
    /// A batch of tag-cache programming entries.
    FlowMod(Vec<WireFlowMod>),
    /// Ticket-stamped, barrier-delimited per-station groups of
    /// tag-cache entries emitted by one sharded-controller ticket.
    /// `(shard, seq)` orders batches globally: receivers apply batches
    /// in ascending `seq` regardless of which shard's worker sent them.
    FlowModBatch {
        /// Worker shard that emitted the batch.
        shard: u16,
        /// Global ticket number of the coordinated event.
        seq: u32,
        /// Per-station groups in emission order.
        groups: Vec<WireBatchGroup>,
    },
    /// Fence request.
    BarrierRequest,
    /// Fence acknowledgement.
    BarrierReply,
    /// Counter poll.
    StatsRequest,
    /// Counter answer.
    StatsReply(ChannelStats),
    /// Controller → controller: one replicated-log record. The payload
    /// is opaque to this crate (the replica layer defines the record
    /// encoding); this frame carries the ordering metadata peers need
    /// to accept, reject or gap-detect the record.
    Replicate {
        /// Seat of the proposing controller.
        origin: u32,
        /// The sender's *current* epoch (fencing key). The payload
        /// record carries the epoch it was originally proposed under,
        /// which may trail this when a pending record is re-shipped
        /// after the proposer survived an epoch change.
        epoch: u64,
        /// Position in the origin's log (1-based, dense).
        index: u64,
        /// The origin's commit watermark, piggybacked so followers can
        /// advance their commit index without extra round trips.
        commit: u64,
        /// Encoded log record (zero-copy on decode).
        payload: Cow<'a, [u8]>,
    },
    /// The answer to a [`Message::Replicate`]: accepted, or rejected
    /// with the receiver's view so the sender can fence or catch the
    /// receiver up.
    ReplicateAck {
        /// Seat of the *acknowledging* controller.
        origin: u32,
        /// The acknowledging controller's current epoch.
        epoch: u64,
        /// Index being acknowledged (echoes the request).
        index: u64,
        /// Whether the record was accepted and applied.
        accepted: bool,
        /// Highest contiguous index the receiver holds from the
        /// record's origin — on a gap rejection this tells the sender
        /// where the snapshot/backfill must start.
        have_index: u64,
    },
    /// A membership view push. Requests and replies share this shape:
    /// the reply carries the receiver's view after merging, which is
    /// the sender's view unless the receiver already knew a newer one.
    EpochChange {
        /// The view's epoch.
        epoch: u64,
        /// Per-seat liveness flags, seat order (ring size = length).
        live: Vec<bool>,
    },
    /// A full-state snapshot, *merged into* the receiver's store (the
    /// replica layer's point-wise join — a snapshot never erases
    /// records the receiver holds that the sender lacks). Sent when a
    /// gap rejection shows a peer is too far behind to replay, and
    /// during fail-over convergence; a receiver holding state the
    /// sender lacks replies with this same frame carrying its merged
    /// image.
    SnapshotTransfer {
        /// Seat of the sending controller.
        origin: u32,
        /// Epoch the snapshot was taken under (fencing key).
        epoch: u64,
        /// Per-seat applied-index watermarks the snapshot covers, seat
        /// order (advisory; the store image itself carries per-origin
        /// watermarks).
        applied: Vec<u64>,
        /// Encoded store image (opaque to this crate).
        payload: Cow<'a, [u8]>,
    },
}

impl Message<'_> {
    /// The header type code of this message.
    pub fn msg_type(&self) -> u8 {
        match self {
            Message::Hello { .. } => msg_type::HELLO,
            Message::EchoRequest(_) => msg_type::ECHO_REQUEST,
            Message::EchoReply(_) => msg_type::ECHO_REPLY,
            Message::Error { .. } => msg_type::ERROR,
            Message::PacketIn(_) => msg_type::PACKET_IN,
            Message::ClassifierReply { .. } => msg_type::CLASSIFIER_REPLY,
            Message::FlowMod(_) => msg_type::FLOW_MOD,
            Message::FlowModBatch { .. } => msg_type::FLOW_MOD_BATCH,
            Message::BarrierRequest => msg_type::BARRIER_REQUEST,
            Message::BarrierReply => msg_type::BARRIER_REPLY,
            Message::StatsRequest => msg_type::STATS_REQUEST,
            Message::StatsReply(_) => msg_type::STATS_REPLY,
            Message::Replicate { .. } => msg_type::REPLICATE,
            Message::ReplicateAck { .. } => msg_type::REPLICATE_ACK,
            Message::EpochChange { .. } => msg_type::EPOCH_CHANGE,
            Message::SnapshotTransfer { .. } => msg_type::SNAPSHOT_TRANSFER,
        }
    }

    /// Builds the error message reporting `e`. Only the detail text goes
    /// on the wire — the category travels as the code, so decoding
    /// reconstructs the identical [`Error`].
    pub fn from_error(e: &Error) -> Message<'static> {
        let detail = match e {
            Error::Config(m)
            | Error::Range(m)
            | Error::Parse(m)
            | Error::Exhausted(m)
            | Error::NotFound(m)
            | Error::InvalidState(m)
            | Error::Malformed(m)
            | Error::NoPath(m)
            | Error::Timeout(m) => m,
        };
        Message::Error {
            code: ErrorCode::of(e),
            message: Cow::Owned(detail.clone()),
        }
    }

    /// If this is an error message, the [`Error`] it carries.
    pub fn as_error(&self) -> Option<Error> {
        match self {
            Message::Error { code, message } => Some(code.to_error(message)),
            _ => None,
        }
    }

    /// Encodes the message as a complete frame with the given xid.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        let mut w = Writer::frame(self.msg_type(), xid);
        match self {
            Message::Hello { version, peer } => {
                w.u8(*version);
                w.u32(*peer);
            }
            Message::EchoRequest(p) | Message::EchoReply(p) => w.bytes(p),
            Message::Error { code, message } => {
                w.u8(code.to_u8());
                w.str16(message);
            }
            Message::PacketIn(pi) => match pi {
                PacketIn::Attach {
                    imsi,
                    bs,
                    ue_id,
                    now,
                } => {
                    w.u8(0);
                    w.u64(imsi.0);
                    w.u32(bs.0);
                    w.u16(ue_id.0);
                    w.u64(now.0);
                }
                PacketIn::PathRequest { bs, clause } => {
                    w.u8(1);
                    w.u32(bs.0);
                    w.u16(clause.0);
                }
                PacketIn::Detach { imsi } => {
                    w.u8(2);
                    w.u64(imsi.0);
                }
            },
            Message::ClassifierReply { record, classifier } => {
                w.record(record);
                match classifier {
                    Some(c) => {
                        w.u8(1);
                        w.classifier(c);
                    }
                    None => w.u8(0),
                }
            }
            Message::FlowMod(mods) => {
                debug_assert!(mods.len() <= u16::MAX as usize, "flow-mod batch too large");
                w.u16(mods.len() as u16);
                for m in mods {
                    w.u32(m.bs.0);
                    w.u16(m.clause.0);
                    w.tags(&m.tags);
                }
            }
            Message::FlowModBatch { shard, seq, groups } => {
                debug_assert!(
                    groups.len() <= u16::MAX as usize,
                    "batch has too many groups"
                );
                w.u16(*shard);
                w.u32(*seq);
                w.u16(groups.len() as u16);
                for g in groups {
                    debug_assert!(g.mods.len() <= u16::MAX as usize, "group too large");
                    w.u32(g.bs.0);
                    w.u8(u8::from(g.barrier));
                    w.u16(g.mods.len() as u16);
                    for m in &g.mods {
                        w.u32(m.bs.0);
                        w.u16(m.clause.0);
                        w.tags(&m.tags);
                    }
                }
            }
            Message::BarrierRequest | Message::BarrierReply | Message::StatsRequest => {}
            Message::StatsReply(s) => {
                w.u64(s.served);
                w.u64(s.tx_msgs);
                w.u64(s.rx_msgs);
                w.u64(s.tx_bytes);
                w.u64(s.rx_bytes);
            }
            Message::Replicate {
                origin,
                epoch,
                index,
                commit,
                payload,
            } => {
                debug_assert!(payload.len() <= u32::MAX as usize, "record too large");
                w.u32(*origin);
                w.u64(*epoch);
                w.u64(*index);
                w.u64(*commit);
                w.u32(payload.len() as u32);
                w.bytes(payload);
            }
            Message::ReplicateAck {
                origin,
                epoch,
                index,
                accepted,
                have_index,
            } => {
                w.u32(*origin);
                w.u64(*epoch);
                w.u64(*index);
                w.u8(u8::from(*accepted));
                w.u64(*have_index);
            }
            Message::EpochChange { epoch, live } => {
                debug_assert!(live.len() <= u16::MAX as usize, "ring too large");
                w.u64(*epoch);
                w.u16(live.len() as u16);
                for l in live {
                    w.u8(u8::from(*l));
                }
            }
            Message::SnapshotTransfer {
                origin,
                epoch,
                applied,
                payload,
            } => {
                debug_assert!(applied.len() <= u16::MAX as usize, "ring too large");
                debug_assert!(payload.len() <= u32::MAX as usize, "snapshot too large");
                w.u32(*origin);
                w.u64(*epoch);
                w.u16(applied.len() as u16);
                for a in applied {
                    w.u64(*a);
                }
                w.u32(payload.len() as u32);
                w.bytes(payload);
            }
        }
        w.finish()
    }

    /// Encodes the message as a complete frame carrying `ctx` in a
    /// trace-context trailer. An inactive context yields the exact
    /// bytes of [`Message::encode`] — untraced peers see no change.
    pub fn encode_traced(&self, xid: u32, ctx: TraceContext) -> Vec<u8> {
        let mut buf = self.encode(xid);
        if !ctx.is_active() {
            return buf;
        }
        buf.extend_from_slice(&ctx.trace_id.to_be_bytes());
        buf.extend_from_slice(&ctx.parent.to_be_bytes());
        buf[field::RESERVED].copy_from_slice(&FLAG_TRACED.to_be_bytes());
        let len = buf.len() as u32;
        buf[field::LENGTH].copy_from_slice(&len.to_be_bytes());
        buf
    }

    /// Decodes a payload of the given type. The returned message borrows
    /// byte and string payloads from `payload`.
    pub fn parse(kind: u8, payload: &[u8]) -> Result<Message<'_>> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            msg_type::HELLO => Message::Hello {
                version: r.u8()?,
                peer: r.u32()?,
            },
            msg_type::ECHO_REQUEST => return Ok(Message::EchoRequest(Cow::Borrowed(payload))),
            msg_type::ECHO_REPLY => return Ok(Message::EchoReply(Cow::Borrowed(payload))),
            msg_type::ERROR => Message::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                message: Cow::Borrowed(r.str16()?),
            },
            msg_type::PACKET_IN => Message::PacketIn(match r.u8()? {
                0 => PacketIn::Attach {
                    imsi: UeImsi(r.u64()?),
                    bs: BaseStationId(r.u32()?),
                    ue_id: UeId(r.u16()?),
                    now: SimTime(r.u64()?),
                },
                1 => PacketIn::PathRequest {
                    bs: BaseStationId(r.u32()?),
                    clause: ClauseId(r.u16()?),
                },
                2 => PacketIn::Detach {
                    imsi: UeImsi(r.u64()?),
                },
                other => {
                    return Err(Error::Malformed(format!(
                        "unknown packet-in reason {other}"
                    )))
                }
            }),
            msg_type::CLASSIFIER_REPLY => {
                let record = r.record()?;
                let classifier = match r.u8()? {
                    0 => None,
                    1 => Some(r.classifier()?),
                    other => {
                        return Err(Error::Malformed(format!("classifier-present flag {other}")))
                    }
                };
                Message::ClassifierReply { record, classifier }
            }
            msg_type::FLOW_MOD => {
                let n = r.u16()? as usize;
                let mut mods = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    mods.push(WireFlowMod {
                        bs: BaseStationId(r.u32()?),
                        clause: ClauseId(r.u16()?),
                        tags: r.tags()?,
                    });
                }
                Message::FlowMod(mods)
            }
            msg_type::FLOW_MOD_BATCH => {
                let shard = r.u16()?;
                let seq = r.u32()?;
                let n_groups = r.u16()? as usize;
                let mut groups = Vec::with_capacity(n_groups.min(1024));
                for _ in 0..n_groups {
                    let bs = BaseStationId(r.u32()?);
                    let barrier = match r.u8()? {
                        0 => false,
                        1 => true,
                        other => return Err(Error::Malformed(format!("barrier flag {other}"))),
                    };
                    let n_mods = r.u16()? as usize;
                    let mut mods = Vec::with_capacity(n_mods.min(1024));
                    for _ in 0..n_mods {
                        mods.push(WireFlowMod {
                            bs: BaseStationId(r.u32()?),
                            clause: ClauseId(r.u16()?),
                            tags: r.tags()?,
                        });
                    }
                    groups.push(WireBatchGroup { bs, barrier, mods });
                }
                Message::FlowModBatch { shard, seq, groups }
            }
            msg_type::BARRIER_REQUEST => Message::BarrierRequest,
            msg_type::BARRIER_REPLY => Message::BarrierReply,
            msg_type::STATS_REQUEST => Message::StatsRequest,
            msg_type::STATS_REPLY => Message::StatsReply(ChannelStats {
                served: r.u64()?,
                tx_msgs: r.u64()?,
                rx_msgs: r.u64()?,
                tx_bytes: r.u64()?,
                rx_bytes: r.u64()?,
            }),
            msg_type::REPLICATE => {
                let origin = r.u32()?;
                let epoch = r.u64()?;
                let index = r.u64()?;
                let commit = r.u64()?;
                let len = r.u32()? as usize;
                let payload = Cow::Borrowed(r.take(len)?);
                Message::Replicate {
                    origin,
                    epoch,
                    index,
                    commit,
                    payload,
                }
            }
            msg_type::REPLICATE_ACK => {
                let origin = r.u32()?;
                let epoch = r.u64()?;
                let index = r.u64()?;
                let accepted = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(Error::Malformed(format!("accepted flag {other}"))),
                };
                let have_index = r.u64()?;
                Message::ReplicateAck {
                    origin,
                    epoch,
                    index,
                    accepted,
                    have_index,
                }
            }
            msg_type::EPOCH_CHANGE => {
                let epoch = r.u64()?;
                let seats = r.u16()? as usize;
                let mut live = Vec::with_capacity(seats.min(1024));
                for _ in 0..seats {
                    live.push(match r.u8()? {
                        0 => false,
                        1 => true,
                        other => return Err(Error::Malformed(format!("live flag {other}"))),
                    });
                }
                Message::EpochChange { epoch, live }
            }
            msg_type::SNAPSHOT_TRANSFER => {
                let origin = r.u32()?;
                let epoch = r.u64()?;
                let seats = r.u16()? as usize;
                let mut applied = Vec::with_capacity(seats.min(1024));
                for _ in 0..seats {
                    applied.push(r.u64()?);
                }
                let len = r.u32()? as usize;
                let payload = Cow::Borrowed(r.take(len)?);
                Message::SnapshotTransfer {
                    origin,
                    epoch,
                    applied,
                    payload,
                }
            }
            other => return Err(Error::Malformed(format!("unknown message type {other}"))),
        };
        r.done()?;
        Ok(msg)
    }
}

/// Frame builder: header first, payload appended, length patched at the
/// end.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn frame(kind: u8, xid: u32) -> Writer {
        let mut buf = Vec::with_capacity(64);
        buf.push(VERSION);
        buf.push(kind);
        buf.extend_from_slice(&[0, 0]); // reserved
        buf.extend_from_slice(&[0, 0, 0, 0]); // length, patched in finish()
        buf.extend_from_slice(&xid.to_be_bytes());
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// A u16 length followed by UTF-8 bytes; over-long strings are
    /// truncated at a character boundary rather than rejected (error
    /// messages are best-effort).
    fn str16(&mut self, s: &str) {
        let mut end = s.len().min(u16::MAX as usize);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        self.u16(end as u16);
        self.bytes(&s.as_bytes()[..end]);
    }

    fn record(&mut self, rec: &WireUeRecord) {
        self.u64(rec.imsi.0);
        self.u32(u32::from(rec.permanent_ip));
        self.u32(rec.bs.0);
        self.u16(rec.ue_id.0);
        self.u64(rec.since.0);
    }

    fn tags(&mut self, t: &WirePathTags) {
        self.u16(t.uplink_entry.0);
        self.u16(t.uplink_exit.0);
        self.u16(t.downlink_final.0);
        self.u16(t.access_out_port.0);
        match t.qos {
            Some(q) => {
                self.u8(1);
                self.u8(q.dscp);
                self.u8(q.priority);
            }
            None => {
                self.u8(0);
                self.u8(0);
                self.u8(0);
            }
        }
    }

    fn classifier(&mut self, c: &WireClassifier) {
        debug_assert!(c.entries.len() <= u16::MAX as usize, "classifier too large");
        self.u16(c.entries.len() as u16);
        for e in &c.entries {
            let mut flags = 0u8;
            if e.proto.is_some() {
                flags |= 1;
            }
            if e.dst_port.is_some() {
                flags |= 2;
            }
            self.u8(flags);
            self.u8(e.proto.map_or(0, Protocol::number));
            self.u16(e.dst_port.unwrap_or(0));
            self.u8(app_code(e.app));
            self.u16(e.clause.0);
            self.u8(access_code(e.access));
        }
        match c.fallback {
            Some((clause, access)) => {
                self.u8(1);
                self.u16(clause.0);
                self.u8(access_code(access));
            }
            None => self.u8(0),
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let len = self.buf.len() as u32;
        self.buf[field::LENGTH].copy_from_slice(&len.to_be_bytes());
        self.buf
    }
}

/// Bounds-checked payload cursor.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let out = self
            .pos
            .checked_add(n)
            .and_then(|end| self.data.get(self.pos..end))
            .ok_or_else(|| {
                Error::Malformed(format!(
                    "payload truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.data.len()
                ))
            })?;
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| width_err("u8"))
    }
    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?.try_into().map_err(|_| width_err("u16"))?;
        Ok(u16::from_be_bytes(b))
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?.try_into().map_err(|_| width_err("u32"))?;
        Ok(u32::from_be_bytes(b))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?.try_into().map_err(|_| width_err("u64"))?;
        Ok(u64::from_be_bytes(b))
    }

    fn str16(&mut self) -> Result<&'a str> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|e| Error::Malformed(format!("invalid UTF-8 in string: {e}")))
    }

    fn record(&mut self) -> Result<WireUeRecord> {
        Ok(WireUeRecord {
            imsi: UeImsi(self.u64()?),
            permanent_ip: Ipv4Addr::from(self.u32()?),
            bs: BaseStationId(self.u32()?),
            ue_id: UeId(self.u16()?),
            since: SimTime(self.u64()?),
        })
    }

    fn tags(&mut self) -> Result<WirePathTags> {
        let uplink_entry = PolicyTag(self.u16()?);
        let uplink_exit = PolicyTag(self.u16()?);
        let downlink_final = PolicyTag(self.u16()?);
        let access_out_port = PortNo(self.u16()?);
        let qos_present = self.u8()?;
        let dscp = self.u8()?;
        let priority = self.u8()?;
        let qos = match qos_present {
            0 => None,
            1 => Some(QosClass { dscp, priority }),
            other => return Err(Error::Malformed(format!("qos-present flag {other}"))),
        };
        Ok(WirePathTags {
            uplink_entry,
            uplink_exit,
            downlink_final,
            access_out_port,
            qos,
        })
    }

    fn classifier(&mut self) -> Result<WireClassifier> {
        let n = self.u16()? as usize;
        let mut entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let flags = self.u8()?;
            let proto_num = self.u8()?;
            let port = self.u16()?;
            let app = app_from_code(self.u8()?)?;
            let clause = ClauseId(self.u16()?);
            let access = access_from_code(self.u8()?)?;
            entries.push(ClassifierEntry {
                proto: if flags & 1 != 0 {
                    Some(Protocol::from_number(proto_num)?)
                } else {
                    None
                },
                dst_port: if flags & 2 != 0 { Some(port) } else { None },
                app,
                clause,
                access,
            });
        }
        let fallback = match self.u8()? {
            0 => None,
            1 => {
                let clause = ClauseId(self.u16()?);
                let access = access_from_code(self.u8()?)?;
                Some((clause, access))
            }
            other => return Err(Error::Malformed(format!("fallback flag {other}"))),
        };
        Ok(WireClassifier { entries, fallback })
    }

    /// Asserts the payload was consumed exactly.
    fn done(&self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(Error::Malformed(format!(
                "{} trailing bytes after payload",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn app_code(app: ApplicationType) -> u8 {
    ApplicationType::ALL
        .iter()
        .position(|a| *a == app)
        .expect("ALL is exhaustive") as u8
}

fn app_from_code(code: u8) -> Result<ApplicationType> {
    ApplicationType::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| Error::Malformed(format!("unknown application code {code}")))
}

fn access_code(a: AccessControl) -> u8 {
    match a {
        AccessControl::Allow => 0,
        AccessControl::Deny => 1,
    }
}

fn access_from_code(code: u8) -> Result<AccessControl> {
    match code {
        0 => Ok(AccessControl::Allow),
        1 => Ok(AccessControl::Deny),
        other => Err(Error::Malformed(format!("unknown access code {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_matches_header_spec() {
        let buf = Message::BarrierRequest.encode(0xdead_beef);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(buf[0], VERSION);
        assert_eq!(buf[1], msg_type::BARRIER_REQUEST);
        assert_eq!(&buf[2..4], &[0, 0]);
        assert_eq!(u32::from_be_bytes(buf[4..8].try_into().unwrap()), 12);
        assert_eq!(
            u32::from_be_bytes(buf[8..12].try_into().unwrap()),
            0xdead_beef
        );
    }

    #[test]
    fn checked_rejects_bad_frames() {
        assert!(Frame::new_checked(&[0u8; 4][..]).is_err(), "short");
        let mut buf = Message::BarrierRequest.encode(1);
        buf[0] = 9;
        assert!(Frame::new_checked(&buf[..]).is_err(), "version");
        let mut buf = Message::BarrierRequest.encode(1);
        buf[7] = 200; // length 200 != 12-byte buffer
        assert!(Frame::new_checked(&buf[..]).is_err(), "length");
        let mut buf = Message::BarrierRequest.encode(1);
        buf[field::RESERVED].copy_from_slice(&FLAG_TRACED.to_be_bytes());
        assert!(
            Frame::new_checked(&buf[..]).is_err(),
            "traced flag without room for the trailer"
        );
    }

    #[test]
    fn traced_frame_round_trips_context_and_payload() {
        let ctx = TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            parent: 42,
        };
        let msg = Message::PacketIn(PacketIn::PathRequest {
            bs: BaseStationId(9),
            clause: ClauseId(3),
        });
        let plain = msg.encode(17);
        let traced = msg.encode_traced(17, ctx);
        assert_eq!(traced.len(), plain.len() + TRACE_TRAILER_LEN);
        assert_eq!(&traced[..2], &plain[..2], "version/type unchanged");
        assert_eq!(&traced[8..plain.len()], &plain[8..], "payload unchanged");

        let frame = Frame::new_checked(&traced[..]).unwrap();
        assert!(frame.is_traced());
        assert_eq!(frame.trace_context(), ctx);
        assert_eq!(frame.total_len(), traced.len());
        assert_eq!(
            frame.payload(),
            Frame::new_checked(&plain[..]).unwrap().payload(),
            "trailer excluded from the payload"
        );
        assert_eq!(frame.message().unwrap(), msg, "decode ignores the trailer");
    }

    #[test]
    fn inactive_context_keeps_untraced_bytes_identical() {
        let msg = Message::BarrierRequest;
        assert_eq!(
            msg.encode_traced(5, TraceContext::NONE),
            msg.encode(5),
            "no-trace path is byte-identical"
        );
        let frame_buf = msg.encode(5);
        let frame = Frame::new_checked(&frame_buf[..]).unwrap();
        assert!(!frame.is_traced());
        assert_eq!(frame.trace_context(), TraceContext::NONE);
    }

    #[test]
    fn echo_decode_is_zero_copy() {
        let payload = b"ping-payload".to_vec();
        let buf = Message::EchoRequest(Cow::Owned(payload.clone())).encode(7);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        let Message::EchoRequest(got) = frame.message().unwrap() else {
            panic!("wrong type");
        };
        assert!(matches!(got, Cow::Borrowed(_)), "decode must borrow");
        assert_eq!(&*got, &payload[..]);
    }

    #[test]
    fn error_round_trips_as_typed_error() {
        let e = Error::NotFound("imsi42 not attached".into());
        let buf = Message::from_error(&e).encode(3);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.message().unwrap().as_error(), Some(e));
    }

    #[test]
    fn flow_mod_batch_round_trips() {
        let tags = |n: u16| WirePathTags {
            uplink_entry: PolicyTag(n),
            uplink_exit: PolicyTag(n + 1),
            downlink_final: PolicyTag(n + 2),
            access_out_port: PortNo(3),
            qos: None,
        };
        let msg = Message::FlowModBatch {
            shard: 2,
            seq: 0x00C0_FFEE,
            groups: vec![
                WireBatchGroup {
                    bs: BaseStationId(7),
                    barrier: true,
                    mods: vec![
                        WireFlowMod {
                            bs: BaseStationId(7),
                            clause: ClauseId(1),
                            tags: tags(10),
                        },
                        WireFlowMod {
                            bs: BaseStationId(7),
                            clause: ClauseId(2),
                            tags: tags(20),
                        },
                    ],
                },
                WireBatchGroup {
                    bs: BaseStationId(9),
                    barrier: true,
                    mods: vec![],
                },
            ],
        };
        let buf = msg.encode(41);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.message().unwrap(), msg);
    }

    #[test]
    fn flow_mod_batch_rejects_bad_barrier_flag() {
        let msg = Message::FlowModBatch {
            shard: 0,
            seq: 1,
            groups: vec![WireBatchGroup {
                bs: BaseStationId(1),
                barrier: false,
                mods: vec![],
            }],
        };
        let mut buf = msg.encode(1);
        // the barrier flag sits right after the 12-byte header, the
        // u16 shard, u32 seq, u16 group count and u32 bs
        let flag_at = HEADER_LEN + 2 + 4 + 2 + 4;
        assert_eq!(buf[flag_at], 0);
        buf[flag_at] = 2;
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert!(frame.message().is_err(), "barrier flag 2 must be rejected");
    }

    #[test]
    fn replication_family_round_trips() {
        let record = b"opaque-log-record".to_vec();
        let msgs: Vec<Message<'static>> = vec![
            Message::Replicate {
                origin: 2,
                epoch: 7,
                index: 4242,
                commit: 4200,
                payload: Cow::Owned(record.clone()),
            },
            Message::ReplicateAck {
                origin: 1,
                epoch: 7,
                index: 4242,
                accepted: true,
                have_index: 4242,
            },
            Message::ReplicateAck {
                origin: 1,
                epoch: 9,
                index: 4242,
                accepted: false,
                have_index: 4100,
            },
            Message::EpochChange {
                epoch: 8,
                live: vec![true, false, true],
            },
            Message::SnapshotTransfer {
                origin: 0,
                epoch: 8,
                applied: vec![10, 0, 77],
                payload: Cow::Owned(b"store-image".to_vec()),
            },
        ];
        for msg in msgs {
            let buf = msg.encode(99);
            let frame = Frame::new_checked(&buf[..]).unwrap();
            assert_eq!(frame.message().unwrap(), msg);
        }
    }

    #[test]
    fn replicate_payload_decode_is_zero_copy() {
        let msg = Message::Replicate {
            origin: 0,
            epoch: 1,
            index: 1,
            commit: 0,
            payload: Cow::Owned(b"record-bytes".to_vec()),
        };
        let buf = msg.encode(5);
        let frame = Frame::new_checked(&buf[..]).unwrap();
        let Message::Replicate { payload, .. } = frame.message().unwrap() else {
            panic!("wrong type");
        };
        assert!(matches!(payload, Cow::Borrowed(_)), "decode must borrow");
    }

    #[test]
    fn replication_family_rejects_malformed_flags_and_truncation() {
        // bad accepted flag
        let mut buf = Message::ReplicateAck {
            origin: 0,
            epoch: 1,
            index: 1,
            accepted: false,
            have_index: 0,
        }
        .encode(1);
        let flag_at = HEADER_LEN + 4 + 8 + 8;
        assert_eq!(buf[flag_at], 0);
        buf[flag_at] = 3;
        assert!(Frame::new_checked(&buf[..]).unwrap().message().is_err());

        // bad live flag
        let mut buf = Message::EpochChange {
            epoch: 2,
            live: vec![false],
        }
        .encode(1);
        let flag_at = HEADER_LEN + 8 + 2;
        assert_eq!(buf[flag_at], 0);
        buf[flag_at] = 9;
        assert!(Frame::new_checked(&buf[..]).unwrap().message().is_err());

        // replicate payload length pointing past the frame
        let mut buf = Message::Replicate {
            origin: 0,
            epoch: 1,
            index: 1,
            commit: 0,
            payload: Cow::Owned(vec![0xaa; 4]),
        }
        .encode(1);
        let len_at = HEADER_LEN + 4 + 8 + 8 + 8;
        buf[len_at..len_at + 4].copy_from_slice(&100u32.to_be_bytes());
        assert!(Frame::new_checked(&buf[..]).unwrap().message().is_err());

        // snapshot applied-count pointing past the frame
        let mut buf = Message::SnapshotTransfer {
            origin: 0,
            epoch: 1,
            applied: vec![1, 2],
            payload: Cow::Owned(vec![]),
        }
        .encode(1);
        let count_at = HEADER_LEN + 4 + 8;
        buf[count_at..count_at + 2].copy_from_slice(&999u16.to_be_bytes());
        assert!(Frame::new_checked(&buf[..]).unwrap().message().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Message::BarrierReply.encode(1);
        buf.push(0xff);
        let len = buf.len() as u32;
        buf[4..8].copy_from_slice(&len.to_be_bytes());
        let frame = Frame::new_checked(&buf[..]).unwrap();
        assert!(frame.message().is_err());
    }
}
