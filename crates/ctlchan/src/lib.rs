//! Southbound control channel between the SoftCell controller and the
//! base-station local agents.
//!
//! The paper's controller talks OpenFlow to its switches and an
//! unspecified southbound protocol to its local agents (§4.2, §6.2 —
//! the Cbench experiment emulates 1000 such agent connections). This
//! crate pins that protocol down, OpenFlow-style:
//!
//! * [`codec`] — the message set ([`Message`]: hello, echo, packet-in,
//!   classifier reply, flow-mod batches, barrier, stats, error) and a
//!   compact length-prefixed binary framing with zero-copy decode over
//!   `&[u8]` ([`Frame`], in the same wrapper idiom as
//!   `softcell-packet`).
//! * [`transport`] — the [`Transport`] trait moving whole frames, with
//!   an in-memory loopback queue pair for tests/benchmarks and a TCP
//!   implementation using length-delimited framing.
//! * [`channel`] — [`CtlChannel`], the agent-side client with
//!   xid-based request/reply correlation, and [`serve`], the
//!   controller-side dispatch loop whose strict arrival-order
//!   processing gives barriers their fence semantics.
//!
//! The crate deliberately sits *below* `softcell-controller`: messages
//! carry wire structs ([`WireUeRecord`], [`WirePathTags`]) that the
//! controller converts to and from its domain types, so the protocol
//! layer has no dependency on controller internals.

pub mod channel;
pub mod codec;
pub mod metrics;
pub mod transport;

pub use channel::{serve, serve_with_options, CtlChannel, RetryPolicy, ServeOptions, DEDUP_WINDOW};
pub use codec::{
    ChannelStats, ErrorCode, Frame, Message, PacketIn, WireBatchGroup, WireClassifier, WireFlowMod,
    WirePathTags, WireUeRecord, HEADER_LEN, MAX_FRAME, VERSION,
};
pub use transport::{
    loopback_pair, ChannelCounters, CounterSnapshot, FaultConfig, FaultStats, FaultTransport,
    Loopback, TcpTransport, Transport,
};
