//! Request/reply correlation and the serve loop.
//!
//! [`CtlChannel`] is the client (agent) side: it stamps each request
//! with a fresh transaction id and blocks until the frame answering that
//! xid arrives, stashing any interleaved replies for later pickup. The
//! controller side is [`serve`]: a loop that decodes each incoming
//! frame, answers protocol-level messages (hello, echo, barrier) itself,
//! and hands application messages to a handler whose reply goes back
//! under the request's xid.

use std::collections::HashMap;

use softcell_types::{Error, Result};

use crate::codec::{ChannelStats, Frame, Message, VERSION};
use crate::transport::Transport;

/// The client end of a control channel: sends requests, correlates
/// replies by xid.
pub struct CtlChannel<T: Transport> {
    transport: T,
    next_xid: u32,
    /// Replies that arrived while waiting for a different xid.
    stash: HashMap<u32, Vec<u8>>,
}

impl<T: Transport> CtlChannel<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> CtlChannel<T> {
        CtlChannel {
            transport,
            // xid 0 is reserved for unsolicited messages
            next_xid: 1,
            stash: HashMap::new(),
        }
    }

    /// The underlying transport (e.g. for counters).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn fresh_xid(&mut self) -> u32 {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        xid
    }

    /// Sends a message without waiting for an answer (unsolicited push;
    /// carried under xid 0).
    pub fn send(&mut self, msg: &Message<'_>) -> Result<()> {
        self.transport.send(&msg.encode(0))
    }

    /// Sends a request and blocks until the reply carrying its xid
    /// arrives, returning the raw reply frame. Replies to *other*
    /// outstanding xids are stashed, not dropped.
    pub fn request(&mut self, msg: &Message<'_>) -> Result<Vec<u8>> {
        let xid = self.fresh_xid();
        self.transport.send(&msg.encode(xid))?;
        if let Some(frame) = self.stash.remove(&xid) {
            return Ok(frame);
        }
        loop {
            let frame = self
                .transport
                .recv()?
                .ok_or_else(|| Error::InvalidState("control channel closed".into()))?;
            let got = Frame::new_checked(frame.as_slice())?.xid();
            if got == xid {
                return Ok(frame);
            }
            self.stash.insert(got, frame);
        }
    }

    /// Exchanges hello frames, verifying the peer speaks our version.
    /// Returns the peer's identity field.
    pub fn hello(&mut self, peer: u32) -> Result<u32> {
        let reply = self.request(&Message::Hello {
            version: VERSION,
            peer,
        })?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::Hello { version, peer } if version == VERSION => Ok(peer),
            Message::Hello { version, .. } => Err(Error::InvalidState(format!(
                "peer speaks ctlchan version {version}, not {VERSION}"
            ))),
            other => Err(unexpected("hello", &other)),
        }
    }

    /// Round-trips an echo, returning the echoed payload.
    pub fn echo(&mut self, payload: &[u8]) -> Result<Vec<u8>> {
        let reply = self.request(&Message::EchoRequest(payload.into()))?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::EchoReply(p) => Ok(p.into_owned()),
            other => Err(unexpected("echo reply", &other)),
        }
    }

    /// Sends a barrier and waits for the fence acknowledgement: when
    /// this returns, the peer has fully processed every frame this
    /// channel sent before the barrier.
    pub fn barrier(&mut self) -> Result<()> {
        let reply = self.request(&Message::BarrierRequest)?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::BarrierReply => Ok(()),
            other => Err(unexpected("barrier reply", &other)),
        }
    }

    /// Polls the peer's connection counters.
    pub fn stats(&mut self) -> Result<ChannelStats> {
        let reply = self.request(&Message::StatsRequest)?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::StatsReply(s) => Ok(s),
            other => Err(unexpected("stats reply", &other)),
        }
    }
}

/// The error for a reply of the wrong type (an error reply surfaces as
/// the error it carries instead).
pub fn unexpected(wanted: &str, got: &Message<'_>) -> Error {
    got.as_error().unwrap_or_else(|| {
        Error::InvalidState(format!(
            "expected {wanted}, got message type {}",
            got.msg_type()
        ))
    })
}

/// Runs the server end of a control channel until the peer disconnects.
///
/// Hello, echo-request, barrier-request and stats-request frames are
/// answered by the loop itself; every other message is passed to
/// `handler`, and its reply (if any) is sent back under the incoming
/// frame's xid. Frames are processed strictly in arrival order, which is
/// what gives the barrier its fence semantics: by the time the loop
/// reaches a barrier-request, every earlier frame on this connection has
/// been fully handled.
///
/// `served` is reported in stats replies (pass the application's request
/// counter snapshot via the closure's environment and return it here).
pub fn serve<T, F, S>(mut transport: T, mut served: S, mut handler: F) -> Result<()>
where
    T: Transport,
    F: FnMut(&Message<'_>) -> Option<Message<'static>>,
    S: FnMut() -> u64,
{
    let counters = transport.counters();
    while let Some(raw) = transport.recv()? {
        let frame = Frame::new_checked(raw.as_slice())?;
        let xid = frame.xid();
        let msg = frame.message()?;
        let reply: Option<Message<'_>> = match &msg {
            Message::Hello { version, .. } => {
                if *version != VERSION {
                    let e = Error::InvalidState(format!(
                        "peer speaks ctlchan version {version}, not {VERSION}"
                    ));
                    transport.send(&Message::from_error(&e).encode(xid))?;
                    return Err(e);
                }
                Some(Message::Hello {
                    version: VERSION,
                    peer: u32::MAX,
                })
            }
            Message::EchoRequest(p) => Some(Message::EchoReply(p.clone())),
            Message::BarrierRequest => {
                // let the handler observe the fence too (tests hook this)
                let _ = handler(&msg);
                Some(Message::BarrierReply)
            }
            Message::StatsRequest => {
                let c = counters.snapshot();
                Some(Message::StatsReply(ChannelStats {
                    served: served(),
                    tx_msgs: c.tx_msgs,
                    rx_msgs: c.rx_msgs,
                    tx_bytes: c.tx_bytes,
                    rx_bytes: c.rx_bytes,
                }))
            }
            other => handler(other).map(Message::into_static),
        };
        if let Some(reply) = reply {
            transport.send(&reply.encode(xid))?;
        }
    }
    Ok(())
}

impl Message<'_> {
    /// Converts any borrowed payloads to owned, detaching the message
    /// from its frame buffer.
    pub fn into_static(self) -> Message<'static> {
        match self {
            Message::EchoRequest(p) => Message::EchoRequest(p.into_owned().into()),
            Message::EchoReply(p) => Message::EchoReply(p.into_owned().into()),
            Message::Error { code, message } => Message::Error {
                code,
                message: message.into_owned().into(),
            },
            Message::Hello { version, peer } => Message::Hello { version, peer },
            Message::PacketIn(pi) => Message::PacketIn(pi),
            Message::ClassifierReply { record, classifier } => {
                Message::ClassifierReply { record, classifier }
            }
            Message::FlowMod(mods) => Message::FlowMod(mods),
            Message::BarrierRequest => Message::BarrierRequest,
            Message::BarrierReply => Message::BarrierReply,
            Message::StatsRequest => Message::StatsRequest,
            Message::StatsReply(s) => Message::StatsReply(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::PacketIn;
    use crate::transport::loopback_pair;

    #[test]
    fn hello_echo_stats_round_trip() {
        let (client_end, server_end) = loopback_pair();
        let server = std::thread::spawn(move || {
            serve(server_end, || 7, |_msg| None).unwrap();
        });
        let mut chan = CtlChannel::new(client_end);
        assert_eq!(chan.hello(3).unwrap(), u32::MAX);
        assert_eq!(chan.echo(b"liveness").unwrap(), b"liveness");
        let stats = chan.stats().unwrap();
        assert_eq!(stats.served, 7);
        assert_eq!(stats.rx_msgs, 3, "hello + echo + stats received");
        drop(chan);
        server.join().unwrap();
    }

    #[test]
    fn error_replies_surface_as_errors() {
        let (client_end, server_end) = loopback_pair();
        let server = std::thread::spawn(move || {
            serve(
                server_end,
                || 0,
                |_msg| Some(Message::from_error(&Error::NotFound("nope".into()))),
            )
            .unwrap();
        });
        let mut chan = CtlChannel::new(client_end);
        let reply = chan
            .request(&Message::PacketIn(PacketIn::Detach {
                imsi: softcell_types::UeImsi(9),
            }))
            .unwrap();
        let msg = Frame::new_checked(reply.as_slice()).unwrap();
        let err = msg.message().unwrap().as_error().unwrap();
        assert_eq!(err, Error::NotFound("nope".into()));
        drop(chan);
        server.join().unwrap();
    }
}
