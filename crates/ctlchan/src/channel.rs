//! Request/reply correlation and the serve loop.
//!
//! [`CtlChannel`] is the client (agent) side: it stamps each request
//! with a fresh transaction id and blocks until the frame answering that
//! xid arrives, stashing any interleaved replies for later pickup. The
//! controller side is [`serve`]: a loop that decodes each incoming
//! frame, answers protocol-level messages (hello, echo, barrier) itself,
//! and hands application messages to a handler whose reply goes back
//! under the request's xid.
//!
//! # Failure model
//!
//! With a transport deadline armed, a request that gets no answer fails
//! with [`Error::Timeout`] instead of blocking forever. Timed-out
//! requests may be *retried under the same xid*
//! ([`CtlChannel::request_with_retry`], exponential backoff); the serve
//! loop remembers its last [`DEDUP_WINDOW`] application replies by xid,
//! so a retransmitted request gets the original reply resent without
//! re-invoking the handler — at-most-once application of flow-mods even
//! when the network duplicates or the client retries. Liveness is
//! checked with [`CtlChannel::probe`], an echo round trip under a
//! deadline.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use softcell_telemetry::{Registry, TraceContext};
use softcell_types::{Error, Result};

use crate::codec::{ChannelStats, Frame, Message, VERSION};
use crate::transport::Transport;

/// Default for how many application replies [`serve`] remembers (per
/// connection, by xid) for retransmission dedup. A client retries a
/// request at most a handful of times with one request outstanding, so a
/// small window is ample; it only needs to cover xids that can still
/// plausibly be retransmitted. Deployments where many requests can be in
/// flight or replayed at once — e.g. a re-homing storm after a
/// controller failure — should widen it via [`ServeOptions`].
pub const DEDUP_WINDOW: usize = 128;

/// Tuning knobs for [`serve`], with [`serve_with_options`] as the entry
/// point that accepts them.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Replies remembered by xid for retransmission dedup. Must be at
    /// least 1: a window of 0 would re-apply every retried request,
    /// breaking the at-most-once guarantee the retry machinery assumes.
    pub dedup_window: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            dedup_window: DEDUP_WINDOW,
        }
    }
}

/// Retry schedule for [`CtlChannel::request_with_retry`]: per-attempt
/// deadline plus truncated exponential backoff between attempts.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Deadline for each individual attempt (armed on the transport).
    pub attempt_timeout: Duration,
    /// Retries after the first attempt (total attempts = retries + 1).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempt_timeout: Duration::from_millis(250),
            max_retries: 5,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(200),
        }
    }
}

/// The client end of a control channel: sends requests, correlates
/// replies by xid.
pub struct CtlChannel<T: Transport> {
    transport: T,
    next_xid: u32,
    /// Replies that arrived while waiting for a different xid.
    stash: HashMap<u32, Vec<u8>>,
    /// Trace context stamped onto outgoing frames while active (set by
    /// the caller around a traced operation, cleared after).
    trace: TraceContext,
}

impl<T: Transport> CtlChannel<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> CtlChannel<T> {
        CtlChannel {
            transport,
            // xid 0 is reserved for unsolicited messages
            next_xid: 1,
            stash: HashMap::new(),
            trace: TraceContext::NONE,
        }
    }

    /// Sets (or clears, with [`TraceContext::NONE`]) the trace context
    /// propagated on subsequent frames. While active, every request
    /// opens a `wire_rtt` span as a child of this context and ships the
    /// span's context in the frame trailer, so server-side `serve_frame`
    /// spans land in the same trace.
    pub fn set_trace(&mut self, ctx: TraceContext) {
        self.trace = ctx;
    }

    /// The underlying transport (e.g. for counters).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The underlying transport, mutably (e.g. to poke fault injection).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Arms (or clears) the transport deadline bounding every subsequent
    /// send/recv on this channel.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.transport.set_deadline(deadline)
    }

    fn fresh_xid(&mut self) -> u32 {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        xid
    }

    /// Sends a message without waiting for an answer (unsolicited push;
    /// carried under xid 0).
    pub fn send(&mut self, msg: &Message<'_>) -> Result<()> {
        self.transport.send(&msg.encode_traced(0, self.trace))
    }

    /// Sends a request and blocks until the reply carrying its xid
    /// arrives, returning the raw reply frame. Replies to *other*
    /// outstanding xids are stashed, not dropped.
    pub fn request(&mut self, msg: &Message<'_>) -> Result<Vec<u8>> {
        let xid = self.fresh_xid();
        let sp = Registry::global().tracer().span_in(self.trace, "wire_rtt");
        self.attempt(xid, &msg.encode_traced(xid, sp.ctx()))
    }

    /// Sends a request under a per-attempt deadline and retries it —
    /// under the *same* xid, so the server's dedup window can recognize
    /// retransmissions — with truncated exponential backoff while
    /// attempts time out. Only [`Error::Timeout`] triggers a retry; any
    /// other failure (peer closed, decode error) surfaces immediately.
    ///
    /// Safe only for idempotent requests, or against a server that
    /// dedups by xid (ours does — see [`serve`] and [`DEDUP_WINDOW`]).
    pub fn request_with_retry(
        &mut self,
        msg: &Message<'_>,
        policy: &RetryPolicy,
    ) -> Result<Vec<u8>> {
        let xid = self.fresh_xid();
        let sp = Registry::global().tracer().span_in(self.trace, "wire_rtt");
        let encoded = msg.encode_traced(xid, sp.ctx());
        self.transport.set_deadline(Some(policy.attempt_timeout))?;
        let mut backoff = policy.base_backoff;
        let mut attempts_left = policy.max_retries;
        let result = loop {
            match self.attempt(xid, &encoded) {
                Err(e) if e.is_timeout() && attempts_left > 0 => {
                    let m = crate::metrics::metrics();
                    m.timeouts.inc();
                    m.retries.inc();
                    attempts_left -= 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(policy.max_backoff);
                }
                other => {
                    if matches!(&other, Err(e) if e.is_timeout()) {
                        crate::metrics::metrics().timeouts.inc();
                    }
                    break other;
                }
            }
        };
        // best effort: the channel may be dead, but the deadline state
        // must not leak into later plain requests
        let _ = self.transport.set_deadline(None);
        result
    }

    /// One send + receive-until-xid-matches pass.
    fn attempt(&mut self, xid: u32, encoded: &[u8]) -> Result<Vec<u8>> {
        self.transport.send(encoded)?;
        if let Some(frame) = self.stash.remove(&xid) {
            return Ok(frame);
        }
        loop {
            let frame = self
                .transport
                .recv()?
                .ok_or_else(|| Error::InvalidState("control channel closed".into()))?;
            let got = Frame::new_checked(frame.as_slice())?.xid();
            if got == xid {
                return Ok(frame);
            }
            // One request is outstanding at a time (&mut self), so a
            // mismatched xid is a late or duplicated reply to an earlier
            // request; keep a bounded stash in case the caller retries
            // that xid, and shed everything if it somehow grows.
            if self.stash.len() >= 1024 {
                self.stash.clear();
            }
            self.stash.insert(got, frame);
        }
    }

    /// Echo-based liveness probe: round-trips a payload under `deadline`
    /// and reports how long the peer took. [`Error::Timeout`] means the
    /// peer (or the path to it) is unresponsive; the connection itself
    /// may still be usable for a retry or reconnect decision.
    pub fn probe(&mut self, deadline: Duration) -> Result<Duration> {
        self.transport.set_deadline(Some(deadline))?;
        let started = std::time::Instant::now();
        let res = self.echo(b"liveness-probe");
        let _ = self.transport.set_deadline(None);
        let payload = res?;
        if payload != b"liveness-probe" {
            return Err(Error::InvalidState(
                "liveness probe payload mismatch".into(),
            ));
        }
        Ok(started.elapsed())
    }

    /// Exchanges hello frames, verifying the peer speaks our version.
    /// Returns the peer's identity field.
    pub fn hello(&mut self, peer: u32) -> Result<u32> {
        let reply = self.request(&Message::Hello {
            version: VERSION,
            peer,
        })?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::Hello { version, peer } if version == VERSION => Ok(peer),
            Message::Hello { version, .. } => Err(Error::InvalidState(format!(
                "peer speaks ctlchan version {version}, not {VERSION}"
            ))),
            other => Err(unexpected("hello", &other)),
        }
    }

    /// Round-trips an echo, returning the echoed payload.
    pub fn echo(&mut self, payload: &[u8]) -> Result<Vec<u8>> {
        let reply = self.request(&Message::EchoRequest(payload.into()))?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::EchoReply(p) => Ok(p.into_owned()),
            other => Err(unexpected("echo reply", &other)),
        }
    }

    /// Sends a barrier and waits for the fence acknowledgement: when
    /// this returns, the peer has fully processed every frame this
    /// channel sent before the barrier.
    pub fn barrier(&mut self) -> Result<()> {
        let reply = self.request(&Message::BarrierRequest)?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::BarrierReply => Ok(()),
            other => Err(unexpected("barrier reply", &other)),
        }
    }

    /// Polls the peer's connection counters.
    pub fn stats(&mut self) -> Result<ChannelStats> {
        let reply = self.request(&Message::StatsRequest)?;
        match Frame::new_checked(reply.as_slice())?.message()? {
            Message::StatsReply(s) => Ok(s),
            other => Err(unexpected("stats reply", &other)),
        }
    }
}

/// The error for a reply of the wrong type (an error reply surfaces as
/// the error it carries instead).
pub fn unexpected(wanted: &str, got: &Message<'_>) -> Error {
    got.as_error().unwrap_or_else(|| {
        Error::InvalidState(format!(
            "expected {wanted}, got message type {}",
            got.msg_type()
        ))
    })
}

/// Runs the server end of a control channel until the peer disconnects.
///
/// Hello, echo-request, barrier-request and stats-request frames are
/// answered by the loop itself; every other message is passed to
/// `handler` along with the frame's trace context ([`TraceContext::NONE`]
/// for untraced frames), and its reply (if any) is sent back under the
/// incoming frame's xid, echoing the request's trace context. Frames are
/// processed strictly in arrival order, which is what gives the barrier
/// its fence semantics: by the time the loop reaches a barrier-request,
/// every earlier frame on this connection has been fully handled.
///
/// `served` is reported in stats replies (pass the application's request
/// counter snapshot via the closure's environment and return it here).
pub fn serve<T, F, S>(transport: T, served: S, handler: F) -> Result<()>
where
    T: Transport,
    F: FnMut(&Message<'_>, TraceContext) -> Option<Message<'static>>,
    S: FnMut() -> u64,
{
    serve_with_options(transport, served, handler, ServeOptions::default())
}

/// [`serve`] with explicit tuning: currently the xid-dedup window size,
/// which re-homing replay storms may need wider than the default (every
/// re-sent in-flight request of every re-homed agent lands in the same
/// window).
pub fn serve_with_options<T, F, S>(
    mut transport: T,
    mut served: S,
    mut handler: F,
    options: ServeOptions,
) -> Result<()>
where
    T: Transport,
    F: FnMut(&Message<'_>, TraceContext) -> Option<Message<'static>>,
    S: FnMut() -> u64,
{
    let dedup_window = options.dedup_window.max(1);
    let counters = transport.counters();
    // Retransmission dedup: remembers the encoded reply (or deliberate
    // non-reply) of the last DEDUP_WINDOW application requests by xid. A
    // client retry under the same xid is answered from here without
    // re-invoking the handler, so e.g. a retried flow-mod applies once.
    let mut replay: HashMap<u32, Option<Vec<u8>>> = HashMap::new();
    let mut replay_order: VecDeque<u32> = VecDeque::new();
    while let Some(raw) = transport.recv()? {
        let frame = Frame::new_checked(raw.as_slice())?;
        let xid = frame.xid();
        let ctx = frame.trace_context();
        let msg = frame.message()?;
        let is_protocol = matches!(
            msg,
            Message::Hello { .. }
                | Message::EchoRequest(_)
                | Message::BarrierRequest
                | Message::StatsRequest
        );
        if !is_protocol && xid != 0 {
            if let Some(cached) = replay.get(&xid) {
                crate::metrics::metrics().dedup_hits.inc();
                if let Some(encoded) = cached.clone() {
                    transport.send(&encoded)?;
                }
                continue;
            }
        }
        // Handling runs under a serve_frame span adopting the frame's
        // context: handler-side spans nest under it, and the whole
        // server residency becomes visible inside the client's
        // wire_rtt. No-op for untraced frames.
        let sp = Registry::global().tracer().span_in(ctx, "serve_frame");
        let reply: Option<Message<'_>> = match &msg {
            Message::Hello { version, .. } => {
                if *version != VERSION {
                    let e = Error::InvalidState(format!(
                        "peer speaks ctlchan version {version}, not {VERSION}"
                    ));
                    transport.send(&Message::from_error(&e).encode(xid))?;
                    return Err(e);
                }
                Some(Message::Hello {
                    version: VERSION,
                    peer: u32::MAX,
                })
            }
            Message::EchoRequest(p) => Some(Message::EchoReply(p.clone())),
            Message::BarrierRequest => {
                // let the handler observe the fence too (tests hook this)
                let _ = handler(&msg, sp.ctx());
                softcell_telemetry::Registry::global().journal().record(
                    "barrier_ack",
                    u64::from(xid),
                    0,
                );
                Some(Message::BarrierReply)
            }
            Message::StatsRequest => {
                let c = counters.snapshot();
                Some(Message::StatsReply(ChannelStats {
                    served: served(),
                    tx_msgs: c.tx_msgs,
                    rx_msgs: c.rx_msgs,
                    tx_bytes: c.tx_bytes,
                    rx_bytes: c.rx_bytes,
                }))
            }
            other => handler(other, sp.ctx()).map(Message::into_static),
        };
        let encoded = reply.map(|r| r.encode_traced(xid, ctx));
        drop(sp);
        if let Some(encoded) = &encoded {
            transport.send(encoded)?;
        }
        if !is_protocol && xid != 0 {
            while replay_order.len() >= dedup_window {
                if let Some(evicted) = replay_order.pop_front() {
                    replay.remove(&evicted);
                } else {
                    break;
                }
            }
            replay_order.push_back(xid);
            replay.insert(xid, encoded);
        }
    }
    Ok(())
}

impl Message<'_> {
    /// Converts any borrowed payloads to owned, detaching the message
    /// from its frame buffer.
    pub fn into_static(self) -> Message<'static> {
        match self {
            Message::EchoRequest(p) => Message::EchoRequest(p.into_owned().into()),
            Message::EchoReply(p) => Message::EchoReply(p.into_owned().into()),
            Message::Error { code, message } => Message::Error {
                code,
                message: message.into_owned().into(),
            },
            Message::Hello { version, peer } => Message::Hello { version, peer },
            Message::PacketIn(pi) => Message::PacketIn(pi),
            Message::ClassifierReply { record, classifier } => {
                Message::ClassifierReply { record, classifier }
            }
            Message::FlowMod(mods) => Message::FlowMod(mods),
            Message::FlowModBatch { shard, seq, groups } => {
                Message::FlowModBatch { shard, seq, groups }
            }
            Message::BarrierRequest => Message::BarrierRequest,
            Message::BarrierReply => Message::BarrierReply,
            Message::StatsRequest => Message::StatsRequest,
            Message::StatsReply(s) => Message::StatsReply(s),
            Message::Replicate {
                origin,
                epoch,
                index,
                commit,
                payload,
            } => Message::Replicate {
                origin,
                epoch,
                index,
                commit,
                payload: payload.into_owned().into(),
            },
            Message::ReplicateAck {
                origin,
                epoch,
                index,
                accepted,
                have_index,
            } => Message::ReplicateAck {
                origin,
                epoch,
                index,
                accepted,
                have_index,
            },
            Message::EpochChange { epoch, live } => Message::EpochChange { epoch, live },
            Message::SnapshotTransfer {
                origin,
                epoch,
                applied,
                payload,
            } => Message::SnapshotTransfer {
                origin,
                epoch,
                applied,
                payload: payload.into_owned().into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::PacketIn;
    use crate::transport::loopback_pair;

    #[test]
    fn hello_echo_stats_round_trip() {
        let (client_end, server_end) = loopback_pair();
        let server = std::thread::spawn(move || {
            serve(server_end, || 7, |_msg, _ctx| None).unwrap();
        });
        let mut chan = CtlChannel::new(client_end);
        assert_eq!(chan.hello(3).unwrap(), u32::MAX);
        assert_eq!(chan.echo(b"liveness").unwrap(), b"liveness");
        let stats = chan.stats().unwrap();
        assert_eq!(stats.served, 7);
        assert_eq!(stats.rx_msgs, 3, "hello + echo + stats received");
        drop(chan);
        server.join().unwrap();
    }

    #[test]
    fn error_replies_surface_as_errors() {
        let (client_end, server_end) = loopback_pair();
        let server = std::thread::spawn(move || {
            serve(
                server_end,
                || 0,
                |_msg, _ctx| Some(Message::from_error(&Error::NotFound("nope".into()))),
            )
            .unwrap();
        });
        let mut chan = CtlChannel::new(client_end);
        let reply = chan
            .request(&Message::PacketIn(PacketIn::Detach {
                imsi: softcell_types::UeImsi(9),
            }))
            .unwrap();
        let msg = Frame::new_checked(reply.as_slice()).unwrap();
        let err = msg.message().unwrap().as_error().unwrap();
        assert_eq!(err, Error::NotFound("nope".into()));
        drop(chan);
        server.join().unwrap();
    }

    #[test]
    fn probe_measures_liveness_and_times_out_when_dead() {
        let (client_end, server_end) = loopback_pair();
        let server = std::thread::spawn(move || {
            let _ = serve(server_end, || 0, |_msg, _ctx| None);
        });
        let mut chan = CtlChannel::new(client_end);
        let rtt = chan.probe(Duration::from_secs(1)).unwrap();
        assert!(rtt < Duration::from_secs(1));
        drop(chan);
        server.join().unwrap();

        // a peer that never answers: probe fails with a timeout instead
        // of blocking forever
        let (client_end, _server_end) = loopback_pair();
        let mut chan = CtlChannel::new(client_end);
        let err = chan.probe(Duration::from_millis(30)).unwrap_err();
        assert!(err.is_timeout(), "got {err}");
    }

    #[test]
    fn retry_recovers_from_drops_and_server_applies_once() {
        use crate::transport::{FaultConfig, FaultTransport};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let (client_end, server_end) = loopback_pair();
        let applied = Arc::new(AtomicU64::new(0));
        let applied_in_handler = Arc::clone(&applied);
        let server = std::thread::spawn(move || {
            let _ = serve(
                server_end,
                || 0,
                move |msg, _ctx| {
                    if matches!(msg, Message::PacketIn(_)) {
                        applied_in_handler.fetch_add(1, Ordering::SeqCst);
                    }
                    Some(Message::BarrierReply)
                },
            );
        });
        // drop, duplicate and delay what the client sends: requests need
        // retries and arrive multiple times, yet each must be applied
        // exactly once server-side
        let faulty = FaultTransport::new(
            client_end,
            FaultConfig {
                seed: 7,
                drop: 0.4,
                duplicate: 0.3,
                delay: 0.2,
                ..FaultConfig::default()
            },
        );
        let mut chan = CtlChannel::new(faulty);
        let policy = RetryPolicy {
            attempt_timeout: Duration::from_millis(40),
            max_retries: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
        };
        let requests = 20;
        for i in 0..requests {
            let reply = chan
                .request_with_retry(
                    &Message::PacketIn(crate::codec::PacketIn::Detach {
                        imsi: softcell_types::UeImsi(i),
                    }),
                    &policy,
                )
                .unwrap();
            let frame = Frame::new_checked(reply.as_slice()).unwrap();
            assert_eq!(frame.message().unwrap(), Message::BarrierReply);
        }
        let dropped = chan.transport().fault_stats().dropped;
        assert!(dropped > 0, "fault schedule never fired");
        assert_eq!(
            applied.load(Ordering::SeqCst),
            requests,
            "retries must not re-apply requests (xid dedup)"
        );
        drop(chan);
        server.join().unwrap();
    }

    #[test]
    fn dedup_window_size_is_configurable() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // Sends `distinct` requests under xids 1..=distinct, then
        // retransmits xid 1, and reports how many times the handler ran.
        fn run(window: usize, distinct: u32) -> u64 {
            let (client_end, server_end) = loopback_pair();
            let applied = Arc::new(AtomicU64::new(0));
            let applied_in_handler = Arc::clone(&applied);
            let server = std::thread::spawn(move || {
                let _ = serve_with_options(
                    server_end,
                    || 0,
                    move |msg, _ctx| {
                        // the serve loop shows barriers to the handler
                        // too; only application requests count
                        if matches!(msg, Message::PacketIn(_)) {
                            applied_in_handler.fetch_add(1, Ordering::SeqCst);
                        }
                        None
                    },
                    ServeOptions {
                        dedup_window: window,
                    },
                );
            });
            let mut client = client_end;
            let frame = |xid: u32| {
                Message::PacketIn(PacketIn::Detach {
                    imsi: softcell_types::UeImsi(u64::from(xid)),
                })
                .encode(xid)
            };
            for xid in 1..=distinct {
                client.send(&frame(xid)).unwrap();
            }
            // retransmission of the oldest xid, as a retrying client
            // would send after a timeout
            client.send(&frame(1)).unwrap();
            // barrier fences: everything above has been processed when
            // the reply arrives (the barrier itself is protocol-level
            // and does not count as an application request)
            let mut chan = CtlChannel::new(client);
            chan.barrier().unwrap();
            let count = applied.load(Ordering::SeqCst);
            drop(chan);
            server.join().unwrap();
            count
        }

        // Window smaller than the burst: xid 1 has been evicted by the
        // time it is retransmitted, so the handler re-runs — the replay
        // storm "falls out of the window".
        assert_eq!(run(2, 3), 4, "evicted xid must re-apply");
        // Window covering the burst: the retransmission is deduped.
        assert_eq!(run(8, 3), 3, "covered xid must be deduped");
        // A re-homing-storm-sized burst overflows the default window...
        assert_eq!(
            run(DEDUP_WINDOW, DEDUP_WINDOW as u32 + 1),
            u64::from(DEDUP_WINDOW as u32 + 1) + 1
        );
        // ...and a widened window restores at-most-once application.
        assert_eq!(
            run(DEDUP_WINDOW * 4, DEDUP_WINDOW as u32 + 1),
            u64::from(DEDUP_WINDOW as u32 + 1)
        );
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let (client_end, _server_end) = loopback_pair();
        let mut chan = CtlChannel::new(client_end);
        let policy = RetryPolicy {
            attempt_timeout: Duration::from_millis(10),
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        let err = chan
            .request_with_retry(&Message::BarrierRequest, &policy)
            .unwrap_err();
        assert!(err.is_timeout(), "got {err}");
    }
}
