//! Frame transports: in-memory loopback and TCP.
//!
//! A [`Transport`] moves whole frames between a controller and one
//! agent. The loopback pair backs single-process benchmarks and tests
//! with the full encode → frame → decode path but no kernel in the
//! loop; [`TcpTransport`] carries the same frames over a socket with
//! length-delimited framing (the frame header's own length field drives
//! the read loop, like OpenFlow over TCP).
//!
//! Every transport keeps per-connection [`ChannelCounters`] — frames and
//! bytes in each direction — shared out as an `Arc` so the serve loop
//! can report them in stats replies while the transport is in use.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};

use softcell_types::{Error, Result};

use crate::codec::{HEADER_LEN, MAX_FRAME, VERSION};

/// Per-connection send/receive counters.
#[derive(Debug, Default)]
pub struct ChannelCounters {
    tx_msgs: AtomicU64,
    rx_msgs: AtomicU64,
    tx_bytes: AtomicU64,
    rx_bytes: AtomicU64,
}

/// A point-in-time copy of [`ChannelCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Frames sent.
    pub tx_msgs: u64,
    /// Frames received.
    pub rx_msgs: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

impl ChannelCounters {
    fn sent(&self, bytes: usize) {
        self.tx_msgs.fetch_add(1, Ordering::Relaxed);
        self.tx_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn received(&self, bytes: usize) {
        self.rx_msgs.fetch_add(1, Ordering::Relaxed);
        self.rx_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Reads all four counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            tx_msgs: self.tx_msgs.load(Ordering::Relaxed),
            rx_msgs: self.rx_msgs.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Moves whole encoded frames between two control-channel endpoints.
pub trait Transport: Send {
    /// Sends one frame. Fails if the peer is gone.
    fn send(&mut self, frame: &[u8]) -> Result<()>;

    /// Receives one frame, blocking until available. `Ok(None)` means
    /// the peer closed the connection cleanly.
    fn recv(&mut self) -> Result<Option<Vec<u8>>>;

    /// This endpoint's counters.
    fn counters(&self) -> Arc<ChannelCounters>;
}

/// How many frames a loopback direction buffers before `send` blocks —
/// the same backpressure a TCP socket buffer provides.
pub const LOOPBACK_DEPTH: usize = 4096;

/// One end of an in-memory frame queue pair.
pub struct Loopback {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    counters: Arc<ChannelCounters>,
}

/// Creates a connected loopback pair: frames sent on one end arrive on
/// the other, in order, through bounded queues of [`LOOPBACK_DEPTH`].
pub fn loopback_pair() -> (Loopback, Loopback) {
    let (a_tx, b_rx) = bounded(LOOPBACK_DEPTH);
    let (b_tx, a_rx) = bounded(LOOPBACK_DEPTH);
    (
        Loopback {
            tx: a_tx,
            rx: a_rx,
            counters: Arc::new(ChannelCounters::default()),
        },
        Loopback {
            tx: b_tx,
            rx: b_rx,
            counters: Arc::new(ChannelCounters::default()),
        },
    )
}

impl Transport for Loopback {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| Error::InvalidState("control channel peer closed".into()))?;
        self.counters.sent(frame.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        match self.rx.recv() {
            Ok(frame) => {
                self.counters.received(frame.len());
                Ok(Some(frame))
            }
            Err(_) => Ok(None),
        }
    }

    fn counters(&self) -> Arc<ChannelCounters> {
        Arc::clone(&self.counters)
    }
}

/// A control channel over a TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
    counters: Arc<ChannelCounters>,
}

impl TcpTransport {
    /// Connects to a listening controller.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpTransport> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::InvalidState(format!("tcp connect: {e}")))?;
        Ok(TcpTransport::from_stream(stream))
    }

    /// Wraps an accepted stream (controller side). Control messages are
    /// small and latency-bound, so Nagle is disabled.
    pub fn from_stream(stream: TcpStream) -> TcpTransport {
        let _ = stream.set_nodelay(true);
        TcpTransport {
            stream,
            counters: Arc::new(ChannelCounters::default()),
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.stream
            .write_all(frame)
            .map_err(|e| Error::InvalidState(format!("tcp send: {e}")))?;
        self.counters.sent(frame.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        // Length-delimited framing driven by the frame's own header:
        // read the fixed header, validate, then read the payload.
        let mut header = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            match self.stream.read(&mut header[filled..]) {
                // EOF before any byte of a frame = clean close; EOF
                // mid-header = truncated frame.
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(Error::Malformed(format!(
                        "connection closed mid-header ({filled}/{HEADER_LEN} bytes)"
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::InvalidState(format!("tcp recv: {e}"))),
            }
        }
        if header[0] != VERSION {
            return Err(Error::Malformed(format!(
                "ctlchan version {} != {VERSION}",
                header[0]
            )));
        }
        let len = u32::from_be_bytes(header[4..8].try_into().unwrap()) as usize;
        if !(HEADER_LEN..=MAX_FRAME).contains(&len) {
            return Err(Error::Malformed(format!("frame length {len} out of range")));
        }
        let mut frame = vec![0u8; len];
        frame[..HEADER_LEN].copy_from_slice(&header);
        self.stream
            .read_exact(&mut frame[HEADER_LEN..])
            .map_err(|e| Error::Malformed(format!("truncated frame payload: {e}")))?;
        self.counters.received(len);
        Ok(Some(frame))
    }

    fn counters(&self) -> Arc<ChannelCounters> {
        Arc::clone(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Message;
    use std::borrow::Cow;

    #[test]
    fn loopback_delivers_in_order_and_counts() {
        let (mut a, mut b) = loopback_pair();
        let f1 = Message::BarrierRequest.encode(1);
        let f2 = Message::EchoRequest(Cow::Borrowed(b"x")).encode(2);
        a.send(&f1).unwrap();
        a.send(&f2).unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), f1);
        assert_eq!(b.recv().unwrap().unwrap(), f2);
        let sent = a.counters().snapshot();
        let got = b.counters().snapshot();
        assert_eq!(sent.tx_msgs, 2);
        assert_eq!(got.rx_msgs, 2);
        assert_eq!(sent.tx_bytes, (f1.len() + f2.len()) as u64);
        assert_eq!(sent.tx_bytes, got.rx_bytes);
    }

    #[test]
    fn loopback_close_is_observed() {
        let (a, mut b) = loopback_pair();
        drop(a);
        assert_eq!(b.recv().unwrap(), None);
        let (mut a, b) = loopback_pair();
        drop(b);
        assert!(a.send(&Message::BarrierRequest.encode(1)).is_err());
    }

    #[test]
    fn tcp_round_trips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut t = TcpTransport::from_stream(stream);
            // echo frames back until the client closes
            while let Some(frame) = t.recv().unwrap() {
                t.send(&frame).unwrap();
            }
            t.counters().snapshot()
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        for i in 0..10u32 {
            let frame = Message::EchoRequest(Cow::Owned(vec![i as u8; i as usize])).encode(i);
            client.send(&frame).unwrap();
            assert_eq!(client.recv().unwrap().unwrap(), frame);
        }
        drop(client);
        let server_counters = server.join().unwrap();
        assert_eq!(server_counters.rx_msgs, 10);
        assert_eq!(server_counters.tx_msgs, 10);
    }
}
