//! Frame transports: in-memory loopback and TCP.
//!
//! A [`Transport`] moves whole frames between a controller and one
//! agent. The loopback pair backs single-process benchmarks and tests
//! with the full encode → frame → decode path but no kernel in the
//! loop; [`TcpTransport`] carries the same frames over a socket with
//! length-delimited framing (the frame header's own length field drives
//! the read loop, like OpenFlow over TCP).
//!
//! Every transport keeps per-connection [`ChannelCounters`] — frames and
//! bytes in each direction — shared out as an `Arc` so the serve loop
//! can report them in stats replies while the transport is in use.
//!
//! Two fault-tolerance building blocks live here as well. Every
//! transport honours a *deadline* ([`Transport::set_deadline`]): with one
//! armed, `send`/`recv` return [`Error::Timeout`] instead of blocking
//! forever on a dead peer — socket read/write timeouts on TCP, bounded
//! condvar waits on the loopback. And [`FaultTransport`] wraps any
//! transport with seeded fault injection — dropped, duplicated and
//! delayed frames plus mid-frame disconnects — so the retry/reconnect
//! machinery can be exercised deterministically in tests.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use softcell_types::{Error, Result};

use crate::codec::{HEADER_LEN, MAX_FRAME, VERSION};

/// Per-connection send/receive counters.
#[derive(Debug, Default)]
pub struct ChannelCounters {
    tx_msgs: AtomicU64,
    rx_msgs: AtomicU64,
    tx_bytes: AtomicU64,
    rx_bytes: AtomicU64,
}

/// A point-in-time copy of [`ChannelCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Frames sent.
    pub tx_msgs: u64,
    /// Frames received.
    pub rx_msgs: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

impl ChannelCounters {
    fn sent(&self, frame: &[u8]) {
        self.tx_msgs.fetch_add(1, Ordering::Relaxed);
        self.tx_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        let m = crate::metrics::metrics();
        m.frames_tx[crate::metrics::type_index(frame)].inc();
        if crate::metrics::frame_is_traced(frame) {
            m.traced_tx.inc();
        }
    }

    fn received(&self, frame: &[u8]) {
        self.rx_msgs.fetch_add(1, Ordering::Relaxed);
        self.rx_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        let m = crate::metrics::metrics();
        m.frames_rx[crate::metrics::type_index(frame)].inc();
        if crate::metrics::frame_is_traced(frame) {
            m.traced_rx.inc();
        }
    }

    /// Reads all four counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            tx_msgs: self.tx_msgs.load(Ordering::Relaxed),
            rx_msgs: self.rx_msgs.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Moves whole encoded frames between two control-channel endpoints.
pub trait Transport: Send {
    /// Sends one frame. Fails if the peer is gone.
    fn send(&mut self, frame: &[u8]) -> Result<()>;

    /// Receives one frame, blocking until available. `Ok(None)` means
    /// the peer closed the connection cleanly.
    fn recv(&mut self) -> Result<Option<Vec<u8>>>;

    /// This endpoint's counters.
    fn counters(&self) -> Arc<ChannelCounters>;

    /// Bounds every subsequent `send`/`recv`: once armed, a call that
    /// would block longer than `deadline` fails with [`Error::Timeout`]
    /// instead of hanging on a dead peer. `None` restores unbounded
    /// blocking. Transports without a notion of waiting may ignore it.
    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        let _ = deadline;
        Ok(())
    }
}

/// How many frames a loopback direction buffers before `send` blocks —
/// the same backpressure a TCP socket buffer provides.
pub const LOOPBACK_DEPTH: usize = 4096;

/// One end of an in-memory frame queue pair.
pub struct Loopback {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    counters: Arc<ChannelCounters>,
    deadline: Option<Duration>,
}

/// Creates a connected loopback pair: frames sent on one end arrive on
/// the other, in order, through bounded queues of [`LOOPBACK_DEPTH`].
pub fn loopback_pair() -> (Loopback, Loopback) {
    let (a_tx, b_rx) = bounded(LOOPBACK_DEPTH);
    let (b_tx, a_rx) = bounded(LOOPBACK_DEPTH);
    (
        Loopback {
            tx: a_tx,
            rx: a_rx,
            counters: Arc::new(ChannelCounters::default()),
            deadline: None,
        },
        Loopback {
            tx: b_tx,
            rx: b_rx,
            counters: Arc::new(ChannelCounters::default()),
            deadline: None,
        },
    )
}

impl Transport for Loopback {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        match self.deadline {
            None => self
                .tx
                .send(frame.to_vec())
                .map_err(|_| Error::InvalidState("control channel peer closed".into()))?,
            Some(d) => self
                .tx
                .send_timeout(frame.to_vec(), d)
                .map_err(|e| match e {
                    SendTimeoutError::Timeout(_) => {
                        Error::Timeout("loopback send deadline elapsed (queue full)".into())
                    }
                    SendTimeoutError::Disconnected(_) => {
                        Error::InvalidState("control channel peer closed".into())
                    }
                })?,
        }
        self.counters.sent(frame);
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        let got = match self.deadline {
            None => self.rx.recv().ok(),
            Some(d) => match self.rx.recv_timeout(d) {
                Ok(frame) => Some(frame),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(Error::Timeout("loopback recv deadline elapsed".into()))
                }
                Err(RecvTimeoutError::Disconnected) => None,
            },
        };
        match got {
            Some(frame) => {
                self.counters.received(&frame);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    fn counters(&self) -> Arc<ChannelCounters> {
        Arc::clone(&self.counters)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.deadline = deadline;
        Ok(())
    }
}

/// A control channel over a TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
    counters: Arc<ChannelCounters>,
}

impl TcpTransport {
    /// Connects to a listening controller.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<TcpTransport> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::InvalidState(format!("tcp connect: {e}")))?;
        Ok(TcpTransport::from_stream(stream))
    }

    /// Wraps an accepted stream (controller side). Control messages are
    /// small and latency-bound, so Nagle is disabled.
    pub fn from_stream(stream: TcpStream) -> TcpTransport {
        let _ = stream.set_nodelay(true);
        TcpTransport {
            stream,
            counters: Arc::new(ChannelCounters::default()),
        }
    }
}

fn is_io_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.stream.write_all(frame).map_err(|e| {
            if is_io_timeout(&e) {
                // a partial write may have left the stream mid-frame, so
                // a send-side timeout is NOT retryable — the connection
                // must be re-established
                Error::InvalidState("tcp send timed out; stream no longer frame-aligned".into())
            } else {
                Error::InvalidState(format!("tcp send: {e}"))
            }
        })?;
        self.counters.sent(frame);
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        // Length-delimited framing driven by the frame's own header:
        // read the fixed header, validate, then read the payload.
        let mut header = [0u8; HEADER_LEN];
        let mut filled = 0;
        while filled < HEADER_LEN {
            // softcell-lint: allow(wire-panic) -- filled < HEADER_LEN by the loop bound; fixed stack array
            match self.stream.read(&mut header[filled..]) {
                // EOF before any byte of a frame = clean close; EOF
                // mid-header = truncated frame.
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(Error::Malformed(format!(
                        "connection closed mid-header ({filled}/{HEADER_LEN} bytes)"
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // a timeout before the first byte leaves the stream on a
                // frame boundary — recoverable, the caller may retry
                Err(e) if is_io_timeout(&e) && filled == 0 => {
                    return Err(Error::Timeout("tcp recv deadline elapsed".into()))
                }
                Err(e) if is_io_timeout(&e) => {
                    return Err(Error::Malformed(format!(
                        "timed out mid-header ({filled}/{HEADER_LEN} bytes); stream desynced"
                    )))
                }
                Err(e) => return Err(Error::InvalidState(format!("tcp recv: {e}"))),
            }
        }
        // softcell-lint: allow(wire-panic) -- const index into fixed [u8; HEADER_LEN] array
        let version = header[0];
        if version != VERSION {
            return Err(Error::Malformed(format!(
                "ctlchan version {version} != {VERSION}"
            )));
        }
        let len = header
            .get(4..8)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_be_bytes)
            .ok_or_else(|| Error::Malformed("header too short for length field".into()))?
            as usize;
        if !(HEADER_LEN..=MAX_FRAME).contains(&len) {
            return Err(Error::Malformed(format!("frame length {len} out of range")));
        }
        let mut frame = vec![0u8; len];
        // softcell-lint: allow(wire-panic) -- len >= HEADER_LEN validated just above
        frame[..HEADER_LEN].copy_from_slice(&header);
        self.stream
            // softcell-lint: allow(wire-panic) -- len >= HEADER_LEN validated just above
            .read_exact(&mut frame[HEADER_LEN..])
            .map_err(|e| Error::Malformed(format!("truncated frame payload: {e}")))?;
        self.counters.received(&frame);
        Ok(Some(frame))
    }

    fn counters(&self) -> Arc<ChannelCounters> {
        Arc::clone(&self.counters)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(deadline)
            .and_then(|()| self.stream.set_write_timeout(deadline))
            .map_err(|e| Error::InvalidState(format!("tcp set deadline: {e}")))
    }
}

/// Which faults a [`FaultTransport`] injects, and how often.
///
/// Probabilities are per sent frame and evaluated in the order drop →
/// delay → duplicate from one deterministic seeded stream, so a given
/// `(seed, config)` always injects the same fault schedule.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for the fault schedule (deterministic per seed).
    pub seed: u64,
    /// Probability a sent frame is silently dropped.
    pub drop: f64,
    /// Probability a sent frame is sent twice (duplicate delivery).
    pub duplicate: f64,
    /// Probability a sent frame is held back and delivered (in order)
    /// just before the *next* sent frame — a one-send delay. A held
    /// frame is lost if nothing further is sent, like a stuck socket
    /// buffer on a dying connection.
    pub delay: f64,
    /// If `Some(n)`, every n-th send is cut mid-frame: the peer receives
    /// a truncated frame and this endpoint goes dead (all later calls
    /// fail) until [`FaultTransport::revive`].
    pub disconnect_every: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            disconnect_every: None,
        }
    }
}

/// How many of each fault a [`FaultTransport`] has injected so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back one send.
    pub delayed: u64,
    /// Mid-frame disconnects injected.
    pub disconnects: u64,
}

/// A [`Transport`] wrapper injecting faults on the send side: drops,
/// duplicates, delays and mid-frame disconnects, from a seeded
/// deterministic schedule. Receive and deadline handling pass straight
/// through to the wrapped transport.
pub struct FaultTransport<T: Transport> {
    inner: T,
    cfg: FaultConfig,
    rng: StdRng,
    /// Frames held back by the delay fault, flushed before the next send.
    held: Vec<Vec<u8>>,
    sends: u64,
    dead: bool,
    stats: FaultStats,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: T, cfg: FaultConfig) -> FaultTransport<T> {
        FaultTransport {
            inner,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            held: Vec::new(),
            sends: 0,
            dead: false,
            stats: FaultStats::default(),
        }
    }

    /// Injected-fault totals so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether an injected disconnect has killed this endpoint.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Brings a disconnected endpoint back to life *on the same
    /// underlying transport* — only meaningful on the loopback, where
    /// the queues survive; a real TCP stream would need a fresh connect.
    pub fn revive(&mut self) {
        self.dead = false;
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        if self.dead {
            return Err(Error::InvalidState(
                "fault injection: connection is dead".into(),
            ));
        }
        self.sends += 1;
        if let Some(n) = self.cfg.disconnect_every {
            if self.sends.is_multiple_of(n) {
                // mid-frame disconnect: the peer sees a truncated frame
                // (rejected by its length check), then silence
                self.stats.disconnects += 1;
                crate::metrics::metrics().fault_disconnects.inc();
                self.dead = true;
                let cut = (frame.len() / 2).max(1);
                let _ = self.inner.send(&frame[..cut]);
                return Err(Error::InvalidState(
                    "fault injection: disconnected mid-frame".into(),
                ));
            }
        }
        // anything held back by an earlier delay goes first, keeping
        // delivery in order
        let mut queue: Vec<Vec<u8>> = std::mem::take(&mut self.held);
        if self.rng.gen_bool(self.cfg.drop) {
            self.stats.dropped += 1;
            crate::metrics::metrics().fault_dropped.inc();
        } else if self.rng.gen_bool(self.cfg.delay) {
            self.stats.delayed += 1;
            crate::metrics::metrics().fault_delayed.inc();
            self.held.push(frame.to_vec());
        } else if self.rng.gen_bool(self.cfg.duplicate) {
            self.stats.duplicated += 1;
            crate::metrics::metrics().fault_duplicated.inc();
            queue.push(frame.to_vec());
            queue.push(frame.to_vec());
        } else {
            queue.push(frame.to_vec());
        }
        for f in queue {
            self.inner.send(&f)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        if self.dead {
            return Err(Error::InvalidState(
                "fault injection: connection is dead".into(),
            ));
        }
        self.inner.recv()
    }

    fn counters(&self) -> Arc<ChannelCounters> {
        self.inner.counters()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.inner.set_deadline(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Message;
    use std::borrow::Cow;

    #[test]
    fn loopback_delivers_in_order_and_counts() {
        let (mut a, mut b) = loopback_pair();
        let f1 = Message::BarrierRequest.encode(1);
        let f2 = Message::EchoRequest(Cow::Borrowed(b"x")).encode(2);
        a.send(&f1).unwrap();
        a.send(&f2).unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), f1);
        assert_eq!(b.recv().unwrap().unwrap(), f2);
        let sent = a.counters().snapshot();
        let got = b.counters().snapshot();
        assert_eq!(sent.tx_msgs, 2);
        assert_eq!(got.rx_msgs, 2);
        assert_eq!(sent.tx_bytes, (f1.len() + f2.len()) as u64);
        assert_eq!(sent.tx_bytes, got.rx_bytes);
    }

    #[test]
    fn loopback_close_is_observed() {
        let (a, mut b) = loopback_pair();
        drop(a);
        assert_eq!(b.recv().unwrap(), None);
        let (mut a, b) = loopback_pair();
        drop(b);
        assert!(a.send(&Message::BarrierRequest.encode(1)).is_err());
    }

    #[test]
    fn tcp_round_trips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut t = TcpTransport::from_stream(stream);
            // echo frames back until the client closes
            while let Some(frame) = t.recv().unwrap() {
                t.send(&frame).unwrap();
            }
            t.counters().snapshot()
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        for i in 0..10u32 {
            let frame = Message::EchoRequest(Cow::Owned(vec![i as u8; i as usize])).encode(i);
            client.send(&frame).unwrap();
            assert_eq!(client.recv().unwrap().unwrap(), frame);
        }
        drop(client);
        let server_counters = server.join().unwrap();
        assert_eq!(server_counters.rx_msgs, 10);
        assert_eq!(server_counters.tx_msgs, 10);
    }

    #[test]
    fn loopback_deadline_times_out_instead_of_blocking() {
        let (mut a, _b) = loopback_pair();
        a.set_deadline(Some(Duration::from_millis(20))).unwrap();
        let err = a.recv().unwrap_err();
        assert!(err.is_timeout(), "got {err}");
        // clearing the deadline restores (dis)connection semantics
        a.set_deadline(None).unwrap();
        drop(_b);
        assert_eq!(a.recv().unwrap(), None);
    }

    #[test]
    fn tcp_deadline_times_out_on_a_silent_peer() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let mut client = TcpTransport::connect(addr).unwrap();
        client
            .set_deadline(Some(Duration::from_millis(30)))
            .unwrap();
        let err = client.recv().unwrap_err();
        assert!(err.is_timeout(), "got {err}");
        drop(listener);
    }

    #[test]
    fn fault_transport_is_deterministic_per_seed() {
        let run = || {
            let (a, mut b) = loopback_pair();
            let mut f = FaultTransport::new(
                a,
                FaultConfig {
                    seed: 42,
                    drop: 0.3,
                    duplicate: 0.2,
                    delay: 0.2,
                    ..FaultConfig::default()
                },
            );
            let frame = Message::BarrierRequest.encode(1);
            for _ in 0..50 {
                f.send(&frame).unwrap();
            }
            let mut delivered = 0;
            b.set_deadline(Some(Duration::from_millis(5))).unwrap();
            while b.recv().is_ok_and(|f| f.is_some()) {
                delivered += 1;
            }
            (f.fault_stats(), delivered)
        };
        let (s1, d1) = run();
        let (s2, d2) = run();
        assert_eq!(s1, s2);
        assert_eq!(d1, d2);
        assert!(s1.dropped > 0 && s1.duplicated > 0 && s1.delayed > 0);
        // conservation: every send is delivered, dropped, or still held
        assert!(d1 as u64 <= 50 + s1.duplicated);
    }

    #[test]
    fn fault_transport_disconnects_mid_frame() {
        let (a, mut b) = loopback_pair();
        let mut f = FaultTransport::new(
            a,
            FaultConfig {
                disconnect_every: Some(3),
                ..FaultConfig::default()
            },
        );
        let frame = Message::EchoRequest(Cow::Borrowed(b"payload")).encode(7);
        f.send(&frame).unwrap();
        f.send(&frame).unwrap();
        assert!(f.send(&frame).is_err(), "third send injects the cut");
        assert!(f.is_dead());
        assert!(f.send(&frame).is_err(), "dead transport stays dead");
        assert_eq!(f.fault_stats().disconnects, 1);
        // the peer got two good frames, then a truncated one that fails
        // frame validation — exactly what a mid-frame TCP reset looks like
        assert_eq!(b.recv().unwrap().unwrap(), frame);
        assert_eq!(b.recv().unwrap().unwrap(), frame);
        let torn = b.recv().unwrap().unwrap();
        assert!(crate::codec::Frame::new_checked(torn.as_slice()).is_err());
        f.revive();
        f.send(&frame).unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), frame);
    }
}
