//! Criterion micro-benchmarks for the telemetry substrate.
//!
//! The acceptance bar is a counter increment under 10 ns — cheap enough
//! to leave in every hot path. Benchmarked:
//!
//! * `telemetry_counter_inc` — one relaxed atomic increment, the cost a
//!   packet-in pays per counter it touches.
//! * `telemetry_gauge_record_max` — one `fetch_max`, the occupancy
//!   high-water-mark path.
//! * `telemetry_histogram_record` — bucket index + two `fetch_add` +
//!   one `fetch_max`, the latency-sample path.
//! * `telemetry_stopwatch_record` — `Instant::now` twice plus the
//!   histogram record: the full cost of timing one request.
//! * `telemetry_family_lookup` — interning a labeled counter through
//!   the registry's mutex-guarded map (the cold path; hot paths hold
//!   `Arc` handles instead).
//! * `telemetry_snapshot` — draining a populated registry into an
//!   exportable [`Snapshot`] (runs once per report, never per request).
//!
//! With `--features telemetry-off` every primitive compiles to a no-op;
//! the same benches then measure pure harness overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use softcell_telemetry::{Counter, Gauge, Histogram, Registry, Stopwatch};

fn bench_primitives(c: &mut Criterion) {
    // empty closure through the same driver: the loop + black_box floor
    // to subtract from every number below
    c.bench_function("telemetry_harness_floor", |b| b.iter(|| ()));

    // no black_box around the targets: an atomic RMW is a side effect
    // the compiler cannot elide, and forcing the handle to escape every
    // iteration would bill a pointer reload to the primitive
    let counter = Counter::new();
    c.bench_function("telemetry_counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = Gauge::new();
    let mut v = 0u64;
    c.bench_function("telemetry_gauge_record_max", |b| {
        b.iter(|| {
            v = v.wrapping_add(0x9E37_79B9) & 0xFFFF;
            gauge.record_max(v)
        })
    });

    let hist = Histogram::new();
    let mut sample = 1u64;
    c.bench_function("telemetry_histogram_record", |b| {
        b.iter(|| {
            sample = sample.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(sample >> 32)
        })
    });

    c.bench_function("telemetry_stopwatch_record", |b| {
        b.iter(|| {
            let sw = Stopwatch::start();
            sw.record(&hist);
        })
    });
}

fn bench_registry(c: &mut Criterion) {
    let registry = Registry::new();
    c.bench_function("telemetry_family_lookup", |b| {
        b.iter(|| black_box(registry.counter_with("softcell_bench_family_lookup_total", "shard=3")))
    });

    let populated = Registry::new();
    for shard in 0..8u64 {
        let label = format!("shard={shard}");
        populated
            .counter_with("softcell_bench_served_total", &label)
            .add(shard * 1000);
        let h = populated.histogram_with("softcell_bench_latency_ns", &label);
        for i in 0..1024u64 {
            h.record(i * 97);
        }
    }
    populated.journal().record("attach", 1, 2);
    c.bench_function("telemetry_snapshot", |b| {
        b.iter(|| black_box(populated.snapshot()))
    });
}

criterion_group!(benches, bench_primitives, bench_registry);
criterion_main!(benches);
