//! Criterion micro-benchmarks for the southbound control channel.
//!
//! * `ctlchan_encode_*` / `ctlchan_decode_*` — pure codec cost for the
//!   two dominant frame shapes: a classifier reply (attach answer, the
//!   largest message) and a flow-mod batch (path answer).
//! * `ctlchan_loopback_echo` — one full framed round trip through the
//!   in-memory transport and serve loop: encode, queue, decode,
//!   dispatch, reply, decode. The per-request floor the wire mode of
//!   `tab2_agent_throughput` pays on top of the in-process path.
//! * `ctlchan_loopback_path_request` — the same round trip carrying a
//!   real path request through a running [`ControllerServer`] worker
//!   pool, i.e. the §6.2 request path with the wire front-end attached.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use softcell_controller::server::ControllerServer;
use softcell_controller::wire::ChannelController;
use softcell_ctlchan::{
    loopback_pair, serve, CtlChannel, Frame, Message, WireClassifier, WireFlowMod, WirePathTags,
    WireUeRecord,
};
use softcell_policy::clause::ClauseId;
use softcell_policy::{AppClassifier, ServicePolicy, SubscriberAttributes, UeClassifier};
use softcell_types::{BaseStationId, PolicyTag, PortNo, SimTime, UeId, UeImsi};

fn sample_classifier_reply() -> Message<'static> {
    let policy = ServicePolicy::example_carrier_a(1);
    let apps = AppClassifier::default();
    let attrs = SubscriberAttributes::default_home(UeImsi(1));
    let compiled = UeClassifier::compile(&policy, &apps, &attrs);
    Message::ClassifierReply {
        record: WireUeRecord {
            imsi: UeImsi(1),
            permanent_ip: std::net::Ipv4Addr::new(100, 64, 0, 9),
            bs: BaseStationId(37),
            ue_id: UeId(10),
            since: SimTime(12_345),
        },
        classifier: Some(WireClassifier {
            entries: compiled.entries().to_vec(),
            fallback: compiled.fallback(),
        }),
    }
}

fn sample_flow_mod() -> Message<'static> {
    Message::FlowMod(
        (0..4u16)
            .map(|i| WireFlowMod {
                bs: BaseStationId(7),
                clause: ClauseId(i),
                tags: WirePathTags {
                    uplink_entry: PolicyTag(i),
                    uplink_exit: PolicyTag(i + 100),
                    downlink_final: PolicyTag(i),
                    access_out_port: PortNo(1),
                    qos: None,
                },
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let reply = sample_classifier_reply();
    c.bench_function("ctlchan_encode_classifier_reply", |b| {
        b.iter(|| black_box(reply.encode(black_box(7))));
    });
    let buf = reply.encode(7);
    c.bench_function("ctlchan_decode_classifier_reply", |b| {
        b.iter(|| {
            let frame = Frame::new_checked(black_box(buf.as_slice())).expect("frame");
            black_box(frame.message().expect("decode"));
        });
    });

    let mods = sample_flow_mod();
    c.bench_function("ctlchan_encode_flow_mod_batch4", |b| {
        b.iter(|| black_box(mods.encode(black_box(7))));
    });
    let buf = mods.encode(7);
    c.bench_function("ctlchan_decode_flow_mod_batch4", |b| {
        b.iter(|| {
            let frame = Frame::new_checked(black_box(buf.as_slice())).expect("frame");
            black_box(frame.message().expect("decode"));
        });
    });
}

fn bench_loopback(c: &mut Criterion) {
    let (client_end, server_end) = loopback_pair();
    let echo_server = std::thread::spawn(move || {
        let _ = serve(server_end, || 0, |_msg| None);
    });
    let mut chan = CtlChannel::new(client_end);
    c.bench_function("ctlchan_loopback_echo", |b| {
        b.iter(|| black_box(chan.echo(black_box(b"liveness")).expect("echo")));
    });
    drop(chan);
    echo_server.join().expect("echo server");

    let subscribers: Vec<_> = (0..4)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server = ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers, 2)
        .expect("server");
    let (agent_end, controller_end) = loopback_pair();
    let serving = server.serve(controller_end);
    let mut ctl = ChannelController::connect(agent_end, BaseStationId(0)).expect("connect");
    c.bench_function("ctlchan_loopback_path_request", |b| {
        let mut clause = 0u16;
        b.iter(|| {
            // rotate clauses so the (bs, clause) path map stays small but
            // the request is never a pure repeat of the previous one
            clause = (clause + 1) % 64;
            black_box(
                softcell_controller::agent::ControllerApi::request_policy_path(
                    &mut ctl,
                    BaseStationId(0),
                    ClauseId(clause),
                )
                .expect("path"),
            );
        });
    });
    drop(ctl);
    serving.join().expect("serve thread").expect("serve");
    server.shutdown();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_loopback
);
criterion_main!(benches);
