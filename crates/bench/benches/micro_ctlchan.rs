//! Criterion micro-benchmarks for the southbound control channel.
//!
//! * `ctlchan_encode_*` / `ctlchan_decode_*` — pure codec cost for the
//!   two dominant frame shapes: a classifier reply (attach answer, the
//!   largest message) and a flow-mod batch (path answer).
//! * `ctlchan_loopback_echo` — one full framed round trip through the
//!   in-memory transport and serve loop: encode, queue, decode,
//!   dispatch, reply, decode. The per-request floor the wire mode of
//!   `tab2_agent_throughput` pays on top of the in-process path.
//! * `ctlchan_loopback_path_request` — the same round trip carrying a
//!   real path request through a running [`ControllerServer`] worker
//!   pool, i.e. the §6.2 request path with the wire front-end attached.
//! * `ctlchan_retry_path_request_*` — the same request issued through
//!   `request_with_retry` (deadline arming + xid bookkeeping), over a
//!   clean transport and over a `FaultTransport` dropping 10% of sent
//!   frames — the price of the fault-tolerant path, idle and busy.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use softcell_controller::server::ControllerServer;
use softcell_controller::wire::ChannelController;
use softcell_ctlchan::{
    loopback_pair, serve, CtlChannel, FaultConfig, FaultTransport, Frame, Loopback, Message,
    RetryPolicy, Transport, WireClassifier, WireFlowMod, WirePathTags, WireUeRecord,
};
use softcell_policy::clause::ClauseId;
use softcell_policy::{AppClassifier, ServicePolicy, SubscriberAttributes, UeClassifier};
use softcell_types::{BaseStationId, PolicyTag, PortNo, SimTime, UeId, UeImsi};

fn sample_classifier_reply() -> Message<'static> {
    let policy = ServicePolicy::example_carrier_a(1);
    let apps = AppClassifier::default();
    let attrs = SubscriberAttributes::default_home(UeImsi(1));
    let compiled = UeClassifier::compile(&policy, &apps, &attrs);
    Message::ClassifierReply {
        record: WireUeRecord {
            imsi: UeImsi(1),
            permanent_ip: std::net::Ipv4Addr::new(100, 64, 0, 9),
            bs: BaseStationId(37),
            ue_id: UeId(10),
            since: SimTime(12_345),
        },
        classifier: Some(WireClassifier {
            entries: compiled.entries().to_vec(),
            fallback: compiled.fallback(),
        }),
    }
}

fn sample_flow_mod() -> Message<'static> {
    Message::FlowMod(
        (0..4u16)
            .map(|i| WireFlowMod {
                bs: BaseStationId(7),
                clause: ClauseId(i),
                tags: WirePathTags {
                    uplink_entry: PolicyTag(i),
                    uplink_exit: PolicyTag(i + 100),
                    downlink_final: PolicyTag(i),
                    access_out_port: PortNo(1),
                    qos: None,
                },
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let reply = sample_classifier_reply();
    c.bench_function("ctlchan_encode_classifier_reply", |b| {
        b.iter(|| black_box(reply.encode(black_box(7))));
    });
    let buf = reply.encode(7);
    c.bench_function("ctlchan_decode_classifier_reply", |b| {
        b.iter(|| {
            let frame = Frame::new_checked(black_box(buf.as_slice())).expect("frame");
            black_box(frame.message().expect("decode"));
        });
    });

    let mods = sample_flow_mod();
    c.bench_function("ctlchan_encode_flow_mod_batch4", |b| {
        b.iter(|| black_box(mods.encode(black_box(7))));
    });
    let buf = mods.encode(7);
    c.bench_function("ctlchan_decode_flow_mod_batch4", |b| {
        b.iter(|| {
            let frame = Frame::new_checked(black_box(buf.as_slice())).expect("frame");
            black_box(frame.message().expect("decode"));
        });
    });
}

fn bench_loopback(c: &mut Criterion) {
    let (client_end, server_end) = loopback_pair();
    let echo_server = std::thread::spawn(move || {
        let _ = serve(server_end, || 0, |_msg, _ctx| None);
    });
    let mut chan = CtlChannel::new(client_end);
    c.bench_function("ctlchan_loopback_echo", |b| {
        b.iter(|| black_box(chan.echo(black_box(b"liveness")).expect("echo")));
    });
    drop(chan);
    echo_server.join().expect("echo server");

    let subscribers: Vec<_> = (0..4)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server = ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers, 2)
        .expect("server");
    let (agent_end, controller_end) = loopback_pair();
    let serving = server.serve(controller_end);
    let mut ctl = ChannelController::connect(agent_end, BaseStationId(0)).expect("connect");
    c.bench_function("ctlchan_loopback_path_request", |b| {
        let mut clause = 0u16;
        b.iter(|| {
            // rotate clauses so the (bs, clause) path map stays small but
            // the request is never a pure repeat of the previous one
            clause = (clause + 1) % 64;
            black_box(
                softcell_controller::agent::ControllerApi::request_policy_path(
                    &mut ctl,
                    BaseStationId(0),
                    ClauseId(clause),
                )
                .expect("path"),
            );
        });
    });
    drop(ctl);
    serving.join().expect("serve thread").expect("serve");
    server.shutdown();
}

/// A retry policy tuned for benchmarking: timeouts short enough that a
/// dropped frame costs milliseconds, not the production kind of patience.
fn bench_retry_policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_millis(2),
        max_retries: 10,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(1),
    }
}

/// Connects through a fault schedule: the hello handshake runs under a
/// transport deadline, and a lost hello just retries on a fresh pair
/// with the next seed.
fn connect_through_faults(
    server: &ControllerServer,
    serves: &mut Vec<std::thread::JoinHandle<softcell_types::Result<()>>>,
    cfg: FaultConfig,
) -> ChannelController<FaultTransport<Loopback>> {
    for attempt in 0..50 {
        let (agent_end, controller_end) = loopback_pair();
        serves.push(server.serve(controller_end));
        let mut t = FaultTransport::new(
            agent_end,
            FaultConfig {
                seed: cfg.seed + attempt,
                ..cfg
            },
        );
        t.set_deadline(Some(Duration::from_millis(50)))
            .expect("deadline");
        if let Ok(mut ctl) = ChannelController::connect(t, BaseStationId(0)) {
            ctl.channel().set_deadline(None).expect("deadline");
            return ctl;
        }
    }
    panic!("hello failed 50 fault schedules in a row");
}

fn bench_retry(c: &mut Criterion) {
    let subscribers: Vec<_> = (0..4)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server = ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers, 2)
        .expect("server");
    let mut serves = Vec::new();

    // clean transport: pure cost of the retry wrapper (deadline arming,
    // xid pinning) relative to ctlchan_loopback_path_request
    let mut ctl = connect_through_faults(&server, &mut serves, FaultConfig::default());
    ctl.set_retry_policy(Some(bench_retry_policy()));
    c.bench_function("ctlchan_retry_path_request_clean", |b| {
        let mut clause = 0u16;
        b.iter(|| {
            clause = (clause + 1) % 64;
            black_box(
                softcell_controller::agent::ControllerApi::request_policy_path(
                    &mut ctl,
                    BaseStationId(0),
                    ClauseId(clause),
                )
                .expect("path"),
            );
        });
    });
    drop(ctl);

    // 10% of sent frames vanish: requests re-sent under the same xid
    // after a 2 ms timeout, replies recovered from the dedup cache
    let faults = FaultConfig {
        seed: 11,
        drop: 0.10,
        ..FaultConfig::default()
    };
    let mut ctl = connect_through_faults(&server, &mut serves, faults);
    ctl.set_retry_policy(Some(bench_retry_policy()));
    c.bench_function("ctlchan_retry_path_request_drop10", |b| {
        let mut clause = 0u16;
        b.iter(|| {
            clause = (clause + 1) % 64;
            black_box(
                softcell_controller::agent::ControllerApi::request_policy_path(
                    &mut ctl,
                    BaseStationId(0),
                    ClauseId(clause),
                )
                .expect("path"),
            );
        });
    });
    drop(ctl);
    for handle in serves {
        let _ = handle.join().expect("serve thread");
    }
    server.shutdown();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_loopback, bench_retry
);
criterion_main!(benches);
