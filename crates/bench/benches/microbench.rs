//! Criterion micro-benchmarks for SoftCell's hot paths.
//!
//! * `alg1_install_path` — Algorithm 1 throughput: policy-path
//!   installations per second on a k=4 topology (the per-path cost that
//!   bounds how fast the controller can absorb policy changes and new
//!   policy-path requests).
//! * `packet_parse` / `packet_rewrite` — wire-format costs at the access
//!   edge (parse a packet; perform the §4.1 LocIP/tag rewrite).
//! * `classifier_compile` — per-UE classifier compilation, the §6.2
//!   controller request payload.
//! * `classifier_lookup` — the local agent's per-flow classification.
//! * `flow_table_lookup` — wildcard-table lookup with 2000 installed
//!   rules (core-switch model cost).
//! * `shadow_aggregation` — contiguous-prefix merge cascades in the
//!   controller shadow.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use softcell_controller::install::Direction;
use softcell_controller::shadow::{Entry, NextHop, ShadowSwitch};
use softcell_controller::{PathInstaller, TagPolicy};
use softcell_dataplane::matcher::{conventional_priority, Match};
use softcell_dataplane::{Action, FlowTable, LookupKey};
use softcell_packet::{build_flow_packet, AccessRewriter, FiveTuple, HeaderView, Protocol};
use softcell_policy::{AppClassifier, ServicePolicy, SubscriberAttributes, UeClassifier};
use softcell_sim::figure7::scheme_for;
use softcell_topology::{CellularParams, PolicyPath, ShortestPaths};
use softcell_types::{
    AddressingScheme, BaseStationId, Ipv4Prefix, LocIp, PolicyTag, PortEmbedding, PortNo, SwitchId,
    UeId, UeImsi,
};
use std::net::Ipv4Addr;

fn sample_paths(n_clauses: usize) -> (softcell_topology::Topology, Vec<PolicyPath>) {
    let topo = CellularParams::paper(4).build().expect("topology");
    let mut sp = ShortestPaths::new(&topo);
    let gw = topo.default_gateway().switch;
    let kinds: Vec<_> = softcell_types::MiddleboxKind::enumerate(4);
    let mut paths = Vec::new();
    for c in 0..n_clauses {
        let chain: Vec<_> = (0..3)
            .map(|i| topo.instances_of(kinds[(c + i) % kinds.len()])[c % 3])
            .collect();
        for bs in 0..topo.base_stations().len() {
            paths.push(
                sp.route_policy_path(BaseStationId(bs as u32), &chain, gw)
                    .expect("route"),
            );
        }
    }
    (topo, paths)
}

fn bench_alg1(c: &mut Criterion) {
    let (topo, paths) = sample_paths(4);
    let scheme = scheme_for(&topo).expect("scheme");
    c.bench_function("alg1_install_path", |b| {
        let mut installer = PathInstaller::new(&topo, scheme, TagPolicy::default());
        let mut i = 0usize;
        b.iter(|| {
            let p = &paths[i % paths.len()];
            i += 1;
            black_box(
                installer
                    .install_path(p, Direction::Downlink)
                    .expect("install"),
            );
        });
    });
}

fn bench_packet(c: &mut Criterion) {
    let tuple = FiveTuple {
        src: Ipv4Addr::new(100, 64, 0, 9),
        dst: Ipv4Addr::new(93, 184, 216, 34),
        src_port: 50123,
        dst_port: 443,
        proto: Protocol::Tcp,
    };
    c.bench_function("packet_parse", |b| {
        let buf = build_flow_packet(tuple, 64, 0, b"payload");
        b.iter(|| black_box(HeaderView::parse(black_box(&buf)).expect("parse")));
    });

    c.bench_function("packet_rewrite", |b| {
        let rw = AccessRewriter::new(
            AddressingScheme::default_scheme(),
            PortEmbedding::default_embedding(),
        );
        let template = build_flow_packet(tuple, 64, 0, b"payload");
        let loc = LocIp::new(BaseStationId(37), UeId(10));
        let mut buf = template.clone();
        b.iter(|| {
            buf.copy_from_slice(&template);
            black_box(
                rw.uplink_rewrite(&mut buf, loc, PolicyTag(2), 5)
                    .expect("rewrite"),
            );
        });
    });
}

fn bench_classifier(c: &mut Criterion) {
    let policy = ServicePolicy::example_carrier_a(1);
    let apps = AppClassifier::default();
    let attrs = SubscriberAttributes::default_home(UeImsi(1));
    c.bench_function("classifier_compile", |b| {
        b.iter(|| black_box(UeClassifier::compile(&policy, &apps, &attrs)));
    });
    let compiled = UeClassifier::compile(&policy, &apps, &attrs);
    c.bench_function("classifier_lookup", |b| {
        b.iter(|| black_box(compiled.classify(Protocol::Tcp, black_box(443))));
    });
}

fn bench_flow_table(c: &mut Criterion) {
    let ports = PortEmbedding::default_embedding();
    let mut table = FlowTable::new();
    // 2000 rules: a paper-scale core-switch table
    for i in 0..2000u32 {
        let tag = PolicyTag((i % 1024) as u16);
        let prefix = Ipv4Prefix::from_bits(0x0A00_0000 | (i << 9), 23);
        let m = Match::tag_and_prefix(
            softcell_dataplane::matcher::Direction::Downlink,
            tag,
            prefix,
            &ports,
        );
        table
            .install(conventional_priority(&m), m, Action::Forward(PortNo(1)))
            .expect("install");
    }
    let buf = build_flow_packet(
        FiveTuple {
            src: Ipv4Addr::new(93, 184, 216, 34),
            dst: Ipv4Addr::new(10, 0, 100, 7),
            src_port: 443,
            // tag 50 + dst under rule 50's prefix: a genuine TCAM hit
            dst_port: ports.encode(PolicyTag(50), 3).expect("port"),
            proto: Protocol::Tcp,
        },
        64,
        0,
        &[],
    );
    let key = LookupKey {
        in_port: PortNo(1),
        view: HeaderView::parse(&buf).expect("parse"),
        version: 0,
    };
    c.bench_function("flow_table_lookup_2000_rules", |b| {
        b.iter(|| black_box(table.peek(black_box(&key))));
    });
}

fn bench_shadow(c: &mut Criterion) {
    c.bench_function("shadow_aggregation_512_siblings", |b| {
        b.iter(|| {
            let mut s = ShadowSwitch::new();
            // a default pointing elsewhere, then 512 sibling /23
            // overrides that cascade-merge into a single /14
            s.install(
                Entry::Ingress,
                PolicyTag(1),
                Ipv4Prefix::from_bits(0x0B00_0000, 23),
                NextHop::Switch(SwitchId(1)),
            );
            for i in 0..512u32 {
                s.install(
                    Entry::Ingress,
                    PolicyTag(1),
                    Ipv4Prefix::from_bits(0x0A00_0000 | (i << 9), 23),
                    NextHop::Switch(SwitchId(7)),
                );
            }
            // default + one merged /14
            assert_eq!(s.rule_count(), 2);
            black_box(s.rule_count())
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_alg1, bench_packet, bench_classifier, bench_flow_table, bench_shadow
);
criterion_main!(benches);
