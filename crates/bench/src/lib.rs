//! Shared infrastructure for the benchmark binaries.
//!
//! Each binary regenerates one table or figure of the paper's evaluation
//! (§6); see DESIGN.md's experiment index. Results print as aligned
//! text tables (the paper's rows/series) and, with `--json PATH`, as
//! machine-readable JSON so EXPERIMENTS.md numbers stay regenerable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::File;
use std::io::Write as _;
use std::time::Instant;

/// A simple aligned-column table printer.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(headers: &[S]) -> TextTable {
        TextTable {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Writes a serializable result to a JSON file if `--json PATH` was
/// passed on the command line.
pub fn maybe_dump_json<T: serde::Serialize>(args: &[String], value: &T) {
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            let mut f = File::create(path).expect("create json output");
            let s = serde_json::to_string_pretty(value).expect("serialize");
            f.write_all(s.as_bytes()).expect("write json");
            eprintln!("wrote {path}");
        }
    }
}

/// Writes a telemetry snapshot to the path given by `--telemetry PATH`
/// (JSON) and prints its human-readable report. No flag, no output —
/// callers can merge and pass their snapshot unconditionally.
pub fn maybe_dump_telemetry(args: &[String], snapshot: &softcell_telemetry::Snapshot) {
    let Some(pos) = args.iter().position(|a| a == "--telemetry") else {
        return;
    };
    let Some(path) = args.get(pos + 1) else {
        eprintln!("--telemetry needs a file path");
        std::process::exit(2);
    };
    println!("{}", snapshot.report());
    let mut f = File::create(path).expect("create telemetry output");
    let s = serde_json::to_string_pretty(snapshot).expect("serialize telemetry");
    f.write_all(s.as_bytes()).expect("write telemetry");
    eprintln!("wrote {path}");
}

/// Arms process-global trace sampling when `--trace PATH` was passed:
/// one root in 64 is recorded end to end, plus every root slower than
/// the default outlier bound. Returns whether tracing is on so callers
/// can add a dedicated capture phase.
pub fn maybe_arm_tracing(args: &[String]) -> bool {
    if arg_str(args, "--trace").is_none() {
        return false;
    }
    softcell_telemetry::Registry::global()
        .tracer()
        .set_sampling(64, softcell_telemetry::DEFAULT_SLOW_US);
    true
}

/// Writes the snapshot's retained spans as Chrome `trace_event` JSON to
/// the `--trace PATH` argument (loadable in Perfetto or
/// `chrome://tracing`). No flag, no output.
pub fn maybe_dump_trace(args: &[String], snapshot: &softcell_telemetry::Snapshot) {
    let Some(path) = arg_str(args, "--trace") else {
        return;
    };
    let mut f = File::create(path).expect("create trace output");
    f.write_all(snapshot.to_chrome_trace().as_bytes())
        .expect("write trace");
    eprintln!(
        "wrote {path} ({} spans, {} complete traces)",
        snapshot.spans.len(),
        snapshot.complete_traces().len()
    );
}

/// One real over-the-wire exchange against a freshly started sharded
/// controller, run with every root sampled: the exported trace is
/// guaranteed to contain spans that crossed the framed transport — the
/// agent-side `wire_rtt` and the server-side `serve_frame`,
/// `queue_wait`, and worker spans share one trace id, and the path
/// request produces a `flow_mod_batch` + barrier leg. Benches call this
/// at the end of a `--trace` run, regardless of where the sweep left
/// the 1-in-N arrival counter.
pub fn wire_trace_capture(shards: usize) {
    use softcell_controller::agent::ControllerApi;
    use softcell_controller::server::ControllerServer;
    use softcell_controller::wire::ChannelController;
    use softcell_policy::clause::ClauseId;
    use softcell_policy::{ServicePolicy, SubscriberAttributes};
    use softcell_types::{BaseStationId, SimTime, UeId, UeImsi};

    softcell_telemetry::Registry::global()
        .tracer()
        .set_sampling(1, softcell_telemetry::DEFAULT_SLOW_US);
    let subscribers: Vec<SubscriberAttributes> = (0..8)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server =
        ControllerServer::start_sharded(ServicePolicy::example_carrier_a(1), subscribers, shards)
            .expect("sharded server");
    let (agent_end, controller_end) = softcell_ctlchan::loopback_pair();
    let serving = server.serve(controller_end);
    let mut ctl = ChannelController::connect(agent_end, BaseStationId(0)).expect("hello");
    ctl.attach_ue(UeImsi(0), BaseStationId(0), UeId(0), SimTime::ZERO)
        .expect("attach");
    // one root covers the path demand AND its barrier fence, so a
    // single trace spans packet-in -> plan -> commit -> flow_mod_batch
    // -> barrier ack, all across the wire
    {
        use softcell_ctlchan::{Frame, Message, PacketIn};
        let sp = softcell_telemetry::Registry::global()
            .tracer()
            .root("flow_install");
        let chan = ctl.channel();
        chan.set_trace(sp.ctx());
        let raw = chan
            .request(&Message::PacketIn(PacketIn::PathRequest {
                bs: BaseStationId(0),
                clause: ClauseId(2),
            }))
            .expect("path request");
        Frame::new_checked(raw.as_slice()).expect("reply frame");
        chan.barrier().expect("barrier");
        chan.set_trace(softcell_telemetry::TraceContext::NONE);
    }
    ctl.detach_ue(UeImsi(0)).expect("detach");
    drop(ctl);
    serving.join().expect("serve thread").expect("clean close");
    server.shutdown();
}

/// Whether `--quick` was passed (reduced problem sizes for smoke runs).
pub fn is_quick(args: &[String]) -> bool {
    args.iter().any(|a| a == "--quick")
}

/// Parses `--flag N` style integer arguments.
pub fn arg_usize(args: &[String], flag: &str) -> Option<usize> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1)?.parse().ok()
}

/// Parses `--flag VALUE` style string arguments.
pub fn arg_str<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1).map(String::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["k", "median", "max"]);
        t.row(&["8", "1214", "1697"]);
        t.row(&["20", "600", "900"]);
        let s = t.render();
        assert!(s.contains("1214"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["prog", "--quick", "--n", "500"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(is_quick(&args));
        assert_eq!(arg_usize(&args, "--n"), Some(500));
        assert_eq!(arg_usize(&args, "--k"), None);
    }
}
