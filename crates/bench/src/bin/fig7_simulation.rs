//! Figure 7 — large-scale simulation of switch table sizes (paper §6.3).
//!
//! Usage:
//! ```text
//! fig7_simulation [a|b|c|all] [--quick] [--json PATH]
//! ```
//!
//! * `a` — table size vs. number of policy clauses (k=8, m=5,
//!   n ∈ 1000..8000). Paper: median 1214 / max 1697 at n=1000; linear
//!   growth with slope < 2.
//! * `b` — table size vs. policy-path length (k=8, n=1000, m ∈ 4..8).
//!   Paper: max 1934 at m=8; linear with small slope.
//! * `c` — table size vs. network size (n=1000, m=5,
//!   k ∈ {8,10,12,14,16,18,20} → 1280..20000 stations). Paper: table
//!   size *decreases* as the network grows.
//!
//! `--quick` runs a reduced sweep (k=4/6, n scaled down) for smoke
//! testing; absolute numbers then differ but every trend must still
//! hold. The default sweeps use a subset of the paper's x-axis points
//! (this reproduction runs on one core); `--full` runs every point.

use serde::Serialize;
use softcell_bench::{is_quick, maybe_dump_json, maybe_dump_telemetry, timed, TextTable};
use softcell_sim::figure7::{run, run_on, Figure7Config, InstanceChoice};
use softcell_sim::Figure7Result;
use softcell_telemetry::Registry;
use softcell_topology::CellularParams;

#[derive(Serialize)]
struct Output {
    experiment: String,
    quick: bool,
    rows: Vec<Figure7Result>,
}

fn base(quick: bool) -> Figure7Config {
    Figure7Config {
        k: if quick { 4 } else { 8 },
        n_clauses: if quick { 100 } else { 1000 },
        m_chain: 5,
        choice: InstanceChoice::PerClause,
        seed: 2013,
        tag_capacity: u16::MAX,
    }
}

fn print_rows(title: &str, rows: &[Figure7Result]) {
    println!("\n== {title} ==");
    let mut t = TextTable::new(&[
        "k", "stations", "clauses", "m", "paths", "median", "max", "mean", "tags", "swaps",
    ]);
    for r in rows {
        t.row(&[
            r.config.k.to_string(),
            r.base_stations.to_string(),
            r.config.n_clauses.to_string(),
            r.config.m_chain.to_string(),
            r.paths_installed.to_string(),
            r.median_rules.to_string(),
            r.max_rules.to_string(),
            format!("{:.1}", r.mean_rules),
            r.tags_used.to_string(),
            r.swap_rules.to_string(),
        ]);
    }
    t.print();
}

fn sweep_a(quick: bool, full: bool) -> Vec<Figure7Result> {
    let cfg = base(quick);
    let topo = CellularParams::paper(cfg.k).build().expect("topology");
    let ns: Vec<usize> = if quick {
        vec![50, 100, 200]
    } else if full {
        vec![1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000]
    } else {
        vec![1000, 2000, 4000, 8000]
    };
    // Note: each n is run independently (fresh installer), as the paper
    // sweeps configurations, not an incremental deployment.
    ns.into_iter()
        .map(|n| {
            let (r, secs) = timed(|| {
                run_on(
                    &topo,
                    Figure7Config {
                        n_clauses: n,
                        ..cfg
                    },
                )
                .expect("run")
            });
            eprintln!("fig7a n={n}: {secs:.1}s");
            r
        })
        .collect()
}

fn sweep_b(quick: bool) -> Vec<Figure7Result> {
    let cfg = base(quick);
    let topo = CellularParams::paper(cfg.k).build().expect("topology");
    (4..=8)
        .map(|m| {
            let (r, secs) =
                timed(|| run_on(&topo, Figure7Config { m_chain: m, ..cfg }).expect("run"));
            eprintln!("fig7b m={m}: {secs:.1}s");
            r
        })
        .collect()
}

fn sweep_c(quick: bool, full: bool) -> Vec<Figure7Result> {
    let cfg = base(quick);
    let ks: Vec<usize> = if quick {
        vec![4, 6, 8]
    } else if full {
        vec![8, 10, 12, 14, 16, 18, 20]
    } else {
        vec![8, 12, 16, 20]
    };
    ks.into_iter()
        .map(|k| {
            let (r, secs) = timed(|| run(Figure7Config { k, ..cfg }).expect("run"));
            eprintln!("fig7c k={k}: {secs:.1}s");
            r
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = is_quick(&args);
    let full = args.iter().any(|a| a == "--full");
    let which = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");

    if which == "point" {
        // a single configurable data point: fig7_simulation point --k 8 --n 500 --m 5
        let cfg = Figure7Config {
            k: softcell_bench::arg_usize(&args, "--k").unwrap_or(8),
            n_clauses: softcell_bench::arg_usize(&args, "--n").unwrap_or(1000),
            m_chain: softcell_bench::arg_usize(&args, "--m").unwrap_or(5),
            ..base(false)
        };
        let (r, secs) = timed(|| run(cfg).expect("run"));
        eprintln!("point: {secs:.1}s");
        print_rows("single point", &[r]);
        return;
    }

    let mut all_rows = Vec::new();
    if which == "a" || which == "all" {
        let rows = sweep_a(quick, full);
        print_rows(
            "Figure 7(a): table size vs number of policy clauses (paper: median 1214 / max 1697 @ n=1000, slope < 2)",
            &rows,
        );
        all_rows.extend(rows);
    }
    if which == "b" || which == "all" {
        let rows = sweep_b(quick);
        print_rows(
            "Figure 7(b): table size vs policy-path length (paper: max 1934 @ m=8)",
            &rows,
        );
        all_rows.extend(rows);
    }
    if which == "c" || which == "all" {
        let rows = sweep_c(quick, full);
        print_rows(
            "Figure 7(c): table size vs network size (paper: decreasing)",
            &rows,
        );
        all_rows.extend(rows);
    }

    maybe_dump_json(
        &args,
        &Output {
            experiment: format!("fig7-{which}"),
            quick,
            rows: all_rows,
        },
    );
    maybe_dump_telemetry(&args, &Registry::global().snapshot());
}
