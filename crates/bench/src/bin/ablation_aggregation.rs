//! Ablation: multi-dimensional aggregation vs. the §3.1 strawmen.
//!
//! Not a paper figure — it quantifies the claim behind Figure 7: that
//! neither flat tag routing ("scales poorly as it enforces flat
//! routing") nor plain location routing (cannot express policies) is a
//! substitute for selective multi-dimensional matching. The same policy
//! paths are fed to:
//!
//! * **Algorithm 1** (this system);
//! * **flat tag routing** — one label per path, one rule per on-path
//!   switch;
//! * **per-flow rules** — flat shape × 10 concurrent flows/path;
//! * **location-only routing** — destination-prefix forwarding with
//!   sibling aggregation (policy-free lower bound).
//!
//! Usage: `ablation_aggregation [--quick] [--json PATH]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use softcell_bench::{is_quick, maybe_dump_json, maybe_dump_telemetry, timed, TextTable};
use softcell_controller::install::Direction;
use softcell_controller::{PathInstaller, TagPolicy};
use softcell_sim::baseline::{per_flow_estimate, FlatTagBaseline, LocationOnlyBaseline};
use softcell_sim::figure7::scheme_for;
use softcell_telemetry::Registry;
use softcell_topology::{CellularParams, PolicyPath, ShortestPaths, SwitchRole};
use softcell_types::{BaseStationId, MiddleboxId, MiddleboxKind};

#[derive(Serialize)]
struct Row {
    system: String,
    max_rules: usize,
    median_rules: usize,
    total_rules: usize,
    expressive: bool,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    k: usize,
    clauses: usize,
    m: usize,
    paths: usize,
    rows: Vec<Row>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = is_quick(&args);
    let (k, n_clauses, m) = if quick { (4, 50, 3) } else { (8, 1000, 5) };

    let topo = CellularParams::paper(k).build().expect("topology");
    let scheme = scheme_for(&topo).expect("scheme");
    let kinds = MiddleboxKind::enumerate(topo.middlebox_kinds().count());
    let gw = topo.default_gateway().switch;
    let mut sp = ShortestPaths::new(&topo);
    let mut rng = StdRng::seed_from_u64(2013);

    // generate the same path stream once
    println!(
        "generating {} paths (k={k}, n={n_clauses}, m={m})...",
        n_clauses * topo.base_stations().len()
    );
    let (paths, secs) = timed(|| {
        let mut out: Vec<PolicyPath> = Vec::new();
        for _ in 0..n_clauses {
            // per-clause random instances (the Figure 7 methodology)
            use rand::Rng;
            let mut kidx: Vec<usize> = (0..kinds.len()).collect();
            for i in 0..m.min(kinds.len()) {
                let j = rng.gen_range(i..kidx.len());
                kidx.swap(i, j);
            }
            let chain: Vec<MiddleboxId> = kidx[..m.min(kinds.len())]
                .iter()
                .map(|&ki| {
                    let insts = topo.instances_of(kinds[ki]);
                    insts[rng.gen_range(0..insts.len())]
                })
                .collect();
            for bs in 0..topo.base_stations().len() {
                out.push(
                    sp.route_policy_path(BaseStationId(bs as u32), &chain, gw)
                        .expect("route"),
                );
            }
        }
        out
    });
    eprintln!("routed in {secs:.1}s");

    // fabric-switch statistics helper
    let fabric_stats = |per_switch: &[usize]| -> (usize, usize, usize) {
        let mut fabric: Vec<usize> = topo
            .switches()
            .iter()
            .filter(|s| s.role != SwitchRole::Access)
            .map(|s| per_switch[s.id.index()])
            .collect();
        fabric.sort_unstable();
        (
            *fabric.last().unwrap_or(&0),
            fabric[fabric.len() / 2],
            per_switch.iter().sum(),
        )
    };

    // 1. Algorithm 1
    let (alg1, secs) = timed(|| {
        let mut ins = PathInstaller::new(&topo, scheme, TagPolicy::default());
        for p in &paths {
            ins.install_path(p, Direction::Downlink).expect("install");
        }
        ins.shadows(Direction::Downlink).rule_counts()
    });
    eprintln!("algorithm 1 in {secs:.1}s");
    let (a_max, a_med, a_tot) = fabric_stats(&alg1);

    // 2. flat tags
    let mut flat = FlatTagBaseline::new(&topo);
    for p in &paths {
        flat.install(p);
    }
    let (f_max, f_med, f_tot) = fabric_stats(flat.counts().per_switch());

    // 3. per-flow (flat × 10)
    let pf = per_flow_estimate(flat.counts(), 10);
    let (pf_max, pf_med, pf_tot) = fabric_stats(pf.per_switch());

    // 4. location-only
    let mut loc = LocationOnlyBaseline::new(&topo, scheme);
    for p in &paths {
        loc.install(p).expect("loc install");
    }
    let lc = loc.counts();
    let (l_max, l_med, l_tot) = fabric_stats(lc.per_switch());

    let rows = vec![
        Row {
            system: "SoftCell (Algorithm 1)".into(),
            max_rules: a_max,
            median_rules: a_med,
            total_rules: a_tot,
            expressive: true,
        },
        Row {
            system: "flat tag per path".into(),
            max_rules: f_max,
            median_rules: f_med,
            total_rules: f_tot,
            expressive: true,
        },
        Row {
            system: "per-flow rules (x10)".into(),
            max_rules: pf_max,
            median_rules: pf_med,
            total_rules: pf_tot,
            expressive: true,
        },
        Row {
            system: "location-only routing".into(),
            max_rules: l_max,
            median_rules: l_med,
            total_rules: l_tot,
            expressive: false,
        },
    ];

    println!(
        "\n== Aggregation ablation (k={k}, {} paths) ==",
        paths.len()
    );
    let mut t = TextTable::new(&["system", "max/switch", "median", "total", "policies?"]);
    for r in &rows {
        t.row(&[
            r.system.clone(),
            r.max_rules.to_string(),
            r.median_rules.to_string(),
            r.total_rules.to_string(),
            if r.expressive { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.print();

    maybe_dump_json(
        &args,
        &Output {
            experiment: "ablation-aggregation".into(),
            k,
            clauses: n_clauses,
            m,
            paths: paths.len(),
            rows,
        },
    );
    maybe_dump_telemetry(&args, &Registry::global().snapshot());
}
