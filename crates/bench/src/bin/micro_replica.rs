//! Replication-path micro-benchmark: log append, ship/ack commit
//! latency, and replication lag at 1/2/4 replicas.
//!
//! The paper (§5) argues controller fault tolerance is "standard
//! replication techniques" over SoftCell's two state classes; this
//! bench prices those techniques in our implementation. Three numbers:
//!
//! * **append** — pure in-memory log append+encode, the floor every
//!   replicated op pays even alone.
//! * **commit** — full `propose` round trip: encode, ship to every live
//!   peer over the loopback ctlchan mesh, quorum ack, apply. This is
//!   the latency an attach/handoff/path-install adds before its reply
//!   (flow-mod release is commit-gated).
//! * **lag** — committed index on the proposer minus the lowest applied
//!   index across peers after the run: how far the slowest replica
//!   trails once the storm stops (0 = fully synchronous).
//!
//! Usage: `micro_replica [--quick] [--json PATH] [--replicas N] [--quorum Q]`

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use serde::Serialize;
use softcell_bench::{arg_usize, is_quick, maybe_dump_json, TextTable};
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_replica::{Cluster, LogRecord, ReplicatedOp, ReplicationLog};
use softcell_types::{BaseStationId, ControllerId, SimTime, UeId, UeImsi};

#[derive(Serialize)]
struct Row {
    replicas: usize,
    quorum: usize,
    ops: u64,
    append_ns: f64,
    commit_us_p50: f64,
    commit_us_p99: f64,
    commit_us_mean: f64,
    lag: u64,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    rows: Vec<Row>,
}

fn op(i: u64) -> ReplicatedOp {
    ReplicatedOp::Attach {
        imsi: UeImsi(i),
        bs: BaseStationId((i % 7) as u32),
        ue_id: UeId(1),
        since: SimTime(i),
        permanent_ip: Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8),
    }
}

/// ns per pure log append (encode + sequential-index append).
fn bench_append(ops: u64) -> f64 {
    let mut log = ReplicationLog::new();
    let start = Instant::now();
    for i in 0..ops {
        let record = LogRecord {
            origin: ControllerId(0),
            epoch: 1,
            index: log.next_index(),
            op: op(i),
        };
        let encoded = record.encode();
        assert!(!encoded.is_empty());
        log.append(record).expect("sequential append");
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

fn bench_cluster(replicas: usize, quorum: usize, ops: u64) -> Row {
    let cluster = Cluster::start(
        replicas,
        quorum,
        &ServicePolicy::example_carrier_a(1),
        &[SubscriberAttributes::default_home(UeImsi(0))],
        Duration::from_millis(400),
    )
    .expect("cluster start");

    let mut commit_ns: Vec<u64> = Vec::with_capacity(ops as usize);
    for i in 0..ops {
        let start = Instant::now();
        cluster.node(0).propose(op(i)).expect("quorum commit");
        commit_ns.push(start.elapsed().as_nanos() as u64);
    }
    commit_ns.sort_unstable();
    let mean_us = commit_ns.iter().sum::<u64>() as f64 / commit_ns.len().max(1) as f64 / 1_000.0;

    let committed = cluster.node(0).commit_index();
    let lag = (0..replicas)
        .map(|seat| committed - cluster.node(seat).applied(ControllerId(0)))
        .max()
        .unwrap_or(0);

    Row {
        replicas,
        quorum,
        ops,
        append_ns: bench_append(ops),
        commit_us_p50: percentile(&commit_ns, 0.50),
        commit_us_p99: percentile(&commit_ns, 0.99),
        commit_us_mean: mean_us,
        lag,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops: u64 = if is_quick(&args) { 2_000 } else { 20_000 };

    println!("Replication-path microbench (log append / quorum commit / lag)");
    let rows: Vec<Row> = match arg_usize(&args, "--replicas") {
        Some(n) => {
            let quorum = arg_usize(&args, "--quorum").unwrap_or(n / 2 + 1);
            vec![bench_cluster(n, quorum, ops)]
        }
        None => [1usize, 2, 4]
            .iter()
            .map(|&n| bench_cluster(n, n / 2 + 1, ops))
            .collect(),
    };

    let mut t = TextTable::new(&[
        "replicas",
        "quorum",
        "ops",
        "append ns",
        "commit p50 us",
        "commit p99 us",
        "commit mean us",
        "lag",
    ]);
    for r in &rows {
        t.row(&[
            r.replicas.to_string(),
            r.quorum.to_string(),
            r.ops.to_string(),
            format!("{:.0}", r.append_ns),
            format!("{:.1}", r.commit_us_p50),
            format!("{:.1}", r.commit_us_p99),
            format!("{:.1}", r.commit_us_mean),
            r.lag.to_string(),
        ]);
    }
    t.print();

    maybe_dump_json(
        &args,
        &Output {
            experiment: "micro_replica".into(),
            rows,
        },
    );
}
