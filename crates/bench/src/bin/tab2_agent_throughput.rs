//! Table 2 — local-agent throughput vs. classifier-cache hit ratio
//! (paper §6.2).
//!
//! The paper's local agent handles each new flow locally when its cached
//! packet classifiers already carry the policy tag, and makes a
//! controller round trip otherwise; Table 2 shows throughput collapsing
//! from tens of thousands of flows/s at 100 % hit ratio to ~1.8 K/s when
//! every flow needs the controller.
//!
//! This bench runs the *real* [`LocalAgent`] against a real access
//! switch; the controller sits behind a channel-backed proxy whose
//! round trip includes a simulated 500 µs base-station↔controller RTT
//! (the paper's 0 %-hit floor of 1.8 K/s implies ≈ 550 µs per round
//! trip). The hit ratio is forced exactly: before each flow, with
//! probability `1 − p` the flow's clause is evicted from the agent's tag
//! cache.
//!
//! Two controller transports (the Cbench-style comparison of §6.2):
//!
//! * `--transport inproc` (default) — the agent talks straight to the
//!   worker pool over the in-process request channel.
//! * `--transport wire` — the agent's requests are framed by
//!   `softcell-ctlchan`, cross the loopback transport, and are served
//!   by the controller's southbound front-end; both directions pay the
//!   full encode/decode cost on top of the same simulated RTT.
//!
//! A third mode benchmarks the *controller* side instead of the agent:
//!
//! * `--shards N` — packet-in throughput of the sharded worker pool
//!   ([`ControllerServer::start_sharded`]) swept over shard counts
//!   1, 2, 4, … up to N. Sixteen concurrent agents flood attach/detach
//!   packet-ins through the [`RequestRouter`]; every attach blocks its
//!   domain worker on a simulated 200 µs switch install fence (the
//!   classifier landing at the access station), so the measured scaling
//!   is the concurrency a sharded control plane buys when its
//!   bottleneck is fabric round trips — the deployment regime — rather
//!   than raw CPU. `--min-speedup X` turns the run into a smoke check:
//!   exit nonzero unless the largest shard count reaches `X×` the
//!   single-shard rate.
//!
//! Usage: `tab2_agent_throughput [--quick] [--transport inproc|wire]
//!          [--shards N [--min-speedup X]] [--json PATH]
//!          [--telemetry PATH] [--trace PATH]`
//!
//! `--telemetry PATH` prints the run's telemetry report (counters,
//! latency percentiles, journal) and writes the full snapshot — the
//! server's per-instance registry merged with the process-global one —
//! as JSON to `PATH`.
//!
//! `--trace PATH` arms 1-in-64 causal-trace sampling for the run and
//! writes the retained spans as Chrome `trace_event` JSON
//! (Perfetto-loadable). In `--shards` mode the run ends with one fully
//! sampled over-the-wire exchange, so the export always contains a
//! trace spanning packet-in → plan → commit → flow-mod batch → barrier
//! ack across the framed transport.

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use crossbeam::channel::bounded;
use serde::Serialize;
use softcell_bench::{
    is_quick, maybe_arm_tracing, maybe_dump_json, maybe_dump_telemetry, maybe_dump_trace, TextTable,
};
use softcell_controller::agent::{ControllerApi, LocalAgent};
use softcell_controller::core::{AttachGrant, PathTags};
use softcell_controller::server::{ControllerServer, Request};
use softcell_controller::state::UeRecord;
use softcell_controller::wire::ChannelController;
use softcell_ctlchan::{loopback_pair, Loopback};
use softcell_dataplane::Switch;
use softcell_packet::{build_flow_packet, FiveTuple, HeaderView, Protocol};
use softcell_policy::clause::ClauseId;
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_telemetry::{Registry, ReqTrace, Snapshot};
use softcell_types::{
    AddressingScheme, BaseStationId, Error, PolicyTag, PortEmbedding, PortNo, Result, SimTime,
    SwitchId, UeId, UeImsi,
};

/// Channel-backed controller proxy with a simulated network RTT.
struct RemoteController {
    handle: crossbeam::channel::Sender<Request>,
    rtt: Duration,
    next_permanent: u32,
}

impl RemoteController {
    fn round_trip(&self) {
        // the base-station <-> controller network distance
        std::thread::sleep(self.rtt);
    }
}

impl ControllerApi for RemoteController {
    fn attach_ue(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<AttachGrant> {
        self.round_trip();
        let (tx, rx) = bounded(1);
        self.handle
            .send(Request::Classifier {
                imsi,
                reply: tx,
                trace: ReqTrace::NONE,
            })
            .map_err(|_| Error::InvalidState("controller gone".into()))?;
        let classifier = rx
            .recv()
            .map_err(|_| Error::InvalidState("controller gone".into()))??;
        self.next_permanent += 1;
        let permanent_ip = Ipv4Addr::from(0x6440_0000u32 + self.next_permanent);
        Ok(AttachGrant {
            record: UeRecord {
                imsi,
                permanent_ip,
                bs,
                ue_id,
                since: now,
            },
            classifier,
        })
    }

    fn request_policy_path(&mut self, bs: BaseStationId, clause: ClauseId) -> Result<PathTags> {
        self.round_trip();
        let (tx, rx) = bounded(1);
        self.handle
            .send(Request::PathTag {
                bs,
                clause,
                reply: tx,
                trace: ReqTrace::NONE,
            })
            .map_err(|_| Error::InvalidState("controller gone".into()))?;
        let tag: PolicyTag = rx
            .recv()
            .map_err(|_| Error::InvalidState("controller gone".into()))??;
        Ok(PathTags {
            uplink_entry: tag,
            uplink_exit: tag,
            downlink_final: tag,
            access_out_port: PortNo(1),
            qos: None,
        })
    }

    fn detach_ue(&mut self, imsi: UeImsi) -> Result<UeRecord> {
        Err(Error::NotFound(format!("{imsi} (bench proxy)")))
    }
}

/// The wire-mode proxy: a real [`ChannelController`] over the framed
/// loopback transport, with the same simulated RTT added per request so
/// the two modes differ only in serialization + channel cost.
struct WireController {
    chan: ChannelController<Loopback>,
    rtt: Duration,
}

impl WireController {
    fn round_trip(&self) {
        std::thread::sleep(self.rtt);
    }
}

impl ControllerApi for WireController {
    fn attach_ue(
        &mut self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<AttachGrant> {
        self.round_trip();
        self.chan.attach_ue(imsi, bs, ue_id, now)
    }

    fn request_policy_path(&mut self, bs: BaseStationId, clause: ClauseId) -> Result<PathTags> {
        self.round_trip();
        self.chan.request_policy_path(bs, clause)
    }

    fn detach_ue(&mut self, imsi: UeImsi) -> Result<UeRecord> {
        self.round_trip();
        self.chan.detach_ue(imsi)
    }
}

#[derive(Serialize)]
struct Row {
    hit_ratio_pct: f64,
    flows_handled: u64,
    seconds: f64,
    flows_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    transport: String,
    simulated_rtt_us: u64,
    rows: Vec<Row>,
}

fn measure(hit_ratio: f64, duration: Duration, ctl: &mut impl ControllerApi) -> Row {
    let scheme = AddressingScheme::default_scheme();
    let ports = PortEmbedding::default_embedding();
    let mut agent = LocalAgent::new(BaseStationId(0), PortNo(2), scheme, ports);
    let mut switch = Switch::access(SwitchId(0));

    // a population of attached UEs (paper: hundreds per station)
    const UES: u64 = 200;
    for i in 0..UES {
        agent
            .handle_attach(UeImsi(i), ctl, SimTime::ZERO)
            .expect("attach");
    }
    let base_stats = agent.stats();

    // xorshift for the eviction coin
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut flip = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng >> 11) as f64 / (1u64 << 53) as f64
    };

    let start = Instant::now();
    let mut flows: u64 = 0;
    let mut now_us: u64 = 0;
    while start.elapsed() < duration {
        let imsi = UeImsi(flows % UES);
        let permanent = agent.ue(imsi).expect("attached").permanent_ip;
        let tuple = FiveTuple {
            src: permanent,
            dst: Ipv4Addr::new(93, 184, 216, 34),
            src_port: 40_000 + (flows % 20_000) as u16,
            dst_port: 443, // web → the catch-all firewall clause
            proto: Protocol::Tcp,
        };
        let view = HeaderView::parse(&build_flow_packet(tuple, 64, 0, &[])).expect("packet");

        // force the target hit ratio
        if flip() > hit_ratio {
            agent.invalidate_clause(ClauseId(5));
        }

        now_us += 10;
        agent
            .handle_new_flow(&view, ctl, &mut switch, SimTime(now_us))
            .expect("flow");
        // the flow completes immediately (keeps slots bounded)
        agent.flow_finished(imsi, &tuple).expect("finish");
        switch.microflow.remove(&tuple);
        flows += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = agent.stats();
    Row {
        hit_ratio_pct: hit_ratio * 100.0,
        flows_handled: flows,
        seconds: secs,
        flows_per_sec: flows as f64 / secs,
        cache_hits: stats.cache_hits - base_stats.cache_hits,
        cache_misses: stats.cache_misses - base_stats.cache_misses,
    }
}

/// `--transport inproc|wire` (default `inproc`).
fn transport_arg(args: &[String]) -> String {
    match args.iter().position(|a| a == "--transport") {
        Some(i) => args.get(i + 1).cloned().unwrap_or_else(|| "inproc".into()),
        None => "inproc".into(),
    }
}

/// `--shards N`: run the sharded packet-in throughput sweep instead.
fn shards_arg(args: &[String]) -> Option<usize> {
    let i = args.iter().position(|a| a == "--shards")?;
    Some(
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--shards needs a positive integer");
                std::process::exit(2);
            }),
    )
}

/// `--min-speedup X`: fail unless max-shards reaches X× single-shard.
fn min_speedup_arg(args: &[String]) -> Option<f64> {
    let i = args.iter().position(|a| a == "--min-speedup")?;
    Some(
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--min-speedup needs a number");
                std::process::exit(2);
            }),
    )
}

#[derive(Serialize, Clone)]
struct ShardRow {
    shards: usize,
    requests: u64,
    seconds: f64,
    requests_per_sec: f64,
    speedup_vs_one: f64,
}

#[derive(Serialize)]
struct ShardOutput {
    experiment: String,
    clients: usize,
    install_fence_us: u64,
    rows: Vec<ShardRow>,
}

/// Flood the sharded pool with attach/detach packet-ins from `CLIENTS`
/// concurrent agents for `duration`; returns (requests, seconds).
fn measure_shards(shards: usize, duration: Duration) -> (u64, f64, Snapshot) {
    const CLIENTS: usize = 16;
    const UES_PER_CLIENT: u64 = 64;
    const FENCE: Duration = Duration::from_micros(200);

    let subscribers: Vec<SubscriberAttributes> = (0..CLIENTS as u64 * UES_PER_CLIENT)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server =
        ControllerServer::start_sharded(ServicePolicy::example_carrier_a(1), subscribers, shards)
            .expect("sharded server");
    server.set_install_latency(FENCE);
    let router = server.router();

    let start = Instant::now();
    let totals: Vec<std::thread::JoinHandle<u64>> = (0..CLIENTS)
        .map(|c| {
            let router = router.clone();
            std::thread::spawn(move || {
                let (atx, arx) = bounded(1);
                let (dtx, drx) = bounded(1);
                let mut requests = 0u64;
                let base = (c as u64) * UES_PER_CLIENT;
                // a per-client xorshift picks the next UE: sequential
                // picks would keep the clients in lockstep marching
                // through the same shard together (shard keys of
                // consecutive imsis cycle), hiding all cross-domain
                // overlap
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1) | 1;
                // each client churns its private UE population: attach
                // (one blocking install at the station) then detach
                // each packet-in is a trace root: with --trace armed,
                // one in 64 is recorded through queue_wait and the
                // worker handler; disarmed, root() is a single load
                let tracer = Registry::global().tracer();
                while start.elapsed() < duration {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let imsi = UeImsi(base + rng % UES_PER_CLIENT);
                    let sp = tracer.root("bench_attach");
                    router
                        .route(Request::Attach {
                            imsi,
                            bs: BaseStationId((imsi.0 % 31) as u32),
                            ue_id: UeId(0),
                            now: SimTime(requests),
                            reply: atx.clone(),
                            trace: ReqTrace::at_enqueue(sp.ctx()),
                        })
                        .expect("route attach");
                    arx.recv().expect("attach reply").expect("attach grant");
                    drop(sp);
                    requests += 1;
                    let sp = tracer.root("bench_detach");
                    router
                        .route(Request::Detach {
                            imsi,
                            reply: dtx.clone(),
                            trace: ReqTrace::at_enqueue(sp.ctx()),
                        })
                        .expect("route detach");
                    drx.recv().expect("detach reply").expect("detach record");
                    drop(sp);
                    requests += 1;
                }
                requests
            })
        })
        .collect();
    let requests: u64 = totals.into_iter().map(|t| t.join().expect("client")).sum();
    let secs = start.elapsed().as_secs_f64();
    // grab the registry handle first: shutdown consumes the server, and
    // the workers bank their final counters (range steals) on the way out
    let registry = server.telemetry();
    server.shutdown();
    (requests, secs, registry.snapshot())
}

fn run_shard_sweep(max_shards: usize, duration: Duration, args: &[String]) {
    println!("Table 2 (sharded): controller packet-in throughput vs shard count");
    println!("16 agents flood attach/detach; each attach fences a 200us switch install");
    let mut counts = vec![1usize];
    let mut n = 2;
    while n < max_shards {
        counts.push(n);
        n *= 2;
    }
    if max_shards > 1 {
        counts.push(max_shards);
    }

    // touch the ctlchan metric family so frame/retry counters appear in
    // the exported snapshot even when this mode never crosses the wire
    softcell_ctlchan::metrics::metrics();

    let mut rows: Vec<ShardRow> = Vec::new();
    let mut telemetry = Snapshot::default();
    for &shards in &counts {
        let (requests, secs, snap) = measure_shards(shards, duration);
        telemetry.merge(&snap);
        let rate = requests as f64 / secs;
        let speedup = if let Some(first) = rows.first() {
            rate / first.requests_per_sec
        } else {
            1.0
        };
        rows.push(ShardRow {
            shards,
            requests,
            seconds: secs,
            requests_per_sec: rate,
            speedup_vs_one: speedup,
        });
    }

    let mut t = TextTable::new(&["shards", "requests", "secs", "req/s", "speedup"]);
    for r in &rows {
        t.row(&[
            r.shards.to_string(),
            r.requests.to_string(),
            format!("{:.2}", r.seconds),
            format!("{:.0}", r.requests_per_sec),
            format!("{:.2}x", r.speedup_vs_one),
        ]);
    }
    t.print();

    maybe_dump_json(
        args,
        &ShardOutput {
            experiment: "tab2_sharded".into(),
            clients: 16,
            install_fence_us: 200,
            rows: rows.clone(),
        },
    );

    // with --trace, end on a wire-crossing exchange so the exported
    // trace demonstrates packet-in -> plan -> commit -> batch -> barrier
    // across the framed transport (the sweep itself stays in-process)
    if softcell_bench::arg_str(args, "--trace").is_some() {
        softcell_bench::wire_trace_capture(*counts.last().expect("at least one shard count"));
    }

    telemetry.merge(&Registry::global().snapshot());
    maybe_dump_telemetry(args, &telemetry);
    maybe_dump_trace(args, &telemetry);

    if let Some(min) = min_speedup_arg(args) {
        let last = rows.last().expect("at least one row");
        if last.speedup_vs_one < min {
            eprintln!(
                "FAIL: {} shards reached {:.2}x single-shard throughput, need {:.2}x",
                last.shards, last.speedup_vs_one, min
            );
            std::process::exit(1);
        }
        println!(
            "smoke ok: {} shards at {:.2}x single-shard throughput (>= {:.2}x)",
            last.shards, last.speedup_vs_one, min
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    maybe_arm_tracing(&args);
    let duration = if is_quick(&args) {
        Duration::from_millis(300)
    } else {
        Duration::from_millis(1500)
    };
    if let Some(max_shards) = shards_arg(&args) {
        run_shard_sweep(max_shards, duration, &args);
        return;
    }
    let transport = transport_arg(&args);

    let subscribers: Vec<SubscriberAttributes> = (0..200)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server = ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers, 2)
        .expect("server");

    println!("Table 2: local-agent throughput vs cache hit ratio");
    println!("(paper shape: monotone in hit ratio; ~1.8K flows/s at 0%)");
    println!("transport: {transport}");
    let ratios = [1.0, 0.999, 0.99, 0.95, 0.90, 0.80, 0.50, 0.0];
    let rtt = Duration::from_micros(500);
    let rows: Vec<Row> = match transport.as_str() {
        "inproc" => ratios
            .iter()
            .map(|&p| {
                let mut ctl = RemoteController {
                    handle: server.handle(),
                    rtt,
                    next_permanent: 0,
                };
                measure(p, duration, &mut ctl)
            })
            .collect(),
        "wire" => {
            let (agent_end, controller_end) = loopback_pair();
            let serving = server.serve(controller_end);
            let mut ctl = WireController {
                chan: ChannelController::connect(agent_end, BaseStationId(0)).expect("hello"),
                rtt,
            };
            let rows = ratios
                .iter()
                .map(|&p| measure(p, duration, &mut ctl))
                .collect();
            drop(ctl);
            serving
                .join()
                .expect("serve thread")
                .expect("serve loop exits cleanly");
            rows
        }
        other => {
            eprintln!("unknown --transport {other:?} (expected inproc or wire)");
            std::process::exit(2);
        }
    };

    let mut t = TextTable::new(&["hit ratio %", "flows", "secs", "flows/s", "hits", "misses"]);
    for r in &rows {
        t.row(&[
            format!("{:.1}", r.hit_ratio_pct),
            r.flows_handled.to_string(),
            format!("{:.2}", r.seconds),
            format!("{:.0}", r.flows_per_sec),
            r.cache_hits.to_string(),
            r.cache_misses.to_string(),
        ]);
    }
    t.print();

    maybe_dump_json(
        &args,
        &Output {
            experiment: "tab2".into(),
            transport,
            simulated_rtt_us: 500,
            rows,
        },
    );
    let registry = server.telemetry();
    server.shutdown();
    let mut telemetry = registry.snapshot();
    telemetry.merge(&Registry::global().snapshot());
    maybe_dump_telemetry(&args, &telemetry);
    maybe_dump_trace(&args, &telemetry);
}
