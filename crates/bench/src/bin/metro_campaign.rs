//! Metro-at-scale scenario campaign — "a day in the life of a million
//! UEs" (DESIGN.md §14).
//!
//! Runs one or more named scenarios from the regression matrix: a
//! deterministic, time-compressed virtual day over the real stack
//! (cohort tier) plus a statistical model of the full `--ues`
//! population (macro tier), with composable overlays — commuter
//! handoff storms, base-station sleep/wake, gateway failure + reroute,
//! a replicated-controller `kill -9`, flash crowds. Invariants are
//! checked continuously; the first violating event is reported with
//! its seed and virtual timestamp for replay.
//!
//! Usage:
//!   metro_campaign [--scenarios name[,name...]] [--ues N]
//!                  [--compress N] [--cohort N] [--seed N]
//!                  [--slice SECS] [--report PATH] [--telemetry PATH]
//!                  [--trace PATH] [--fabric-dump] [--quick]
//!
//! `--trace PATH` arms 1-in-64 causal-trace sampling for the whole
//! campaign and writes the retained spans as Chrome `trace_event` JSON
//! (Perfetto-loadable); the run ends with one fully sampled
//! over-the-wire exchange so the export always contains a trace that
//! crossed the framed transport.
//!
//! `--scenarios all` (the default) stacks every overlay on one day.
//! `--quick` switches to the reduced 4-station preset. Exits nonzero
//! if any scenario records a violation.

use softcell_bench::{
    arg_str, arg_usize, is_quick, maybe_arm_tracing, maybe_dump_telemetry, maybe_dump_trace,
    wire_trace_capture,
};
use softcell_scenario::{overlays_for, CampaignConfig, CampaignReport, SCENARIOS};
use softcell_types::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tracing = maybe_arm_tracing(&args);
    let names: Vec<String> = arg_str(&args, "--scenarios")
        .or_else(|| arg_str(&args, "--scenario"))
        .unwrap_or("all")
        .split(',')
        .map(str::to_string)
        .collect();
    for name in &names {
        if overlays_for(name).is_none() {
            eprintln!("unknown scenario {name:?}; known: {SCENARIOS:?} (+ seeded-violation)");
            std::process::exit(2);
        }
    }

    let mut reports = Vec::new();
    let mut dumps = Vec::new();
    for name in &names {
        let overlays = overlays_for(name).expect("validated above");
        let mut cfg = if is_quick(&args) {
            CampaignConfig::small(name, overlays)
        } else {
            CampaignConfig::metro(name, overlays)
        };
        if let Some(ues) = arg_usize(&args, "--ues") {
            cfg.ues = ues as u64;
        }
        if let Some(c) = arg_usize(&args, "--compress") {
            cfg.compress = c as u64;
        }
        if let Some(c) = arg_usize(&args, "--cohort") {
            cfg.cohort_cap = c as u64;
        }
        if let Some(s) = arg_usize(&args, "--seed") {
            cfg.seed = s as u64;
        }
        if let Some(s) = arg_usize(&args, "--slice") {
            cfg.slice = SimDuration::from_secs(s as u64);
        }
        cfg.capture_fabric_dump = args.iter().any(|a| a == "--fabric-dump");

        eprintln!(
            "==> {name}: {} modeled UEs, cohort {}, {} stations expected, day {}s / {}x",
            cfg.ues,
            cfg.cohort(),
            cfg.topology.base_station_count(),
            cfg.virtual_day.as_micros() / 1_000_000,
            cfg.compress
        );
        match cfg.run() {
            Ok(out) => {
                println!("{}", out.report.summary_line());
                for v in &out.report.violations {
                    println!("    {v}");
                    println!("    {}", v.replay_coordinates());
                }
                if let Some(d) = out.fabric_dump {
                    dumps.push((name.clone(), d));
                }
                reports.push(out.report);
            }
            Err(e) => {
                eprintln!("{name}: campaign driver failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let campaign = CampaignReport { scenarios: reports };
    if let Some(path) = arg_str(&args, "--report") {
        std::fs::write(path, campaign.to_json()).expect("write report");
        eprintln!("wrote {path}");
    }
    for (name, dump) in &dumps {
        let path = format!("/tmp/softcell-fabric-{name}.txt");
        std::fs::write(&path, dump).expect("write fabric dump");
        eprintln!("wrote {path}");
    }
    if tracing {
        wire_trace_capture(4);
    }
    let snapshot = softcell_telemetry::Registry::global().snapshot();
    maybe_dump_telemetry(&args, &snapshot);
    maybe_dump_trace(&args, &snapshot);

    if !campaign.clean() {
        eprintln!("campaign VIOLATED");
        std::process::exit(1);
    }
    eprintln!("campaign clean");
}
