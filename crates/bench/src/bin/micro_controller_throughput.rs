//! Central-controller throughput micro-benchmark (paper §6.2).
//!
//! The paper floods its Floodlight controller with packet-in events from
//! 1000 Cbench-emulated switches and reports 2.2 M classifier requests
//! per second with 15 threads on an 8-core Xeon W5580.
//!
//! This bench floods the Rust [`ControllerServer`] with classifier
//! requests from emulated local agents and sweeps the worker count.
//! **Host note:** this reproduction machine has a single CPU core, so
//! thread scaling flattens immediately — the per-core request rate is
//! the comparable quantity (the paper's is ≈ 2.2 M / 8 ≈ 275 K/s/core
//! on 2009-era silicon).
//!
//! Usage: `micro_controller_throughput [--quick] [--json PATH]`

use std::time::{Duration, Instant};

use crossbeam::channel::bounded;
use serde::Serialize;
use softcell_bench::{is_quick, maybe_dump_json, maybe_dump_telemetry, TextTable};
use softcell_controller::server::{ControllerServer, Request};
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_telemetry::{Registry, Snapshot};
use softcell_types::UeImsi;

#[derive(Serialize)]
struct Row {
    workers: usize,
    clients: usize,
    requests: u64,
    seconds: f64,
    requests_per_sec: f64,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    host_cores: usize,
    rows: Vec<Row>,
}

fn measure(workers: usize, clients: usize, duration: Duration) -> (Row, Snapshot) {
    const SUBS: u64 = 1000;
    let subscribers: Vec<SubscriberAttributes> = (0..SUBS)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let server = ControllerServer::start(ServicePolicy::example_carrier_a(1), subscribers, workers)
        .expect("server");

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let h = server.handle();
            std::thread::spawn(move || {
                let (tx, rx) = bounded::<softcell_types::Result<softcell_policy::UeClassifier>>(1);
                let mut sent = 0u64;
                let t0 = Instant::now();
                while t0.elapsed() < duration {
                    // emulate a batch of local agents pipelining requests
                    for i in 0..64u64 {
                        h.send(Request::Classifier {
                            imsi: UeImsi((c as u64 * 64 + i + sent) % SUBS),
                            reply: tx.clone(),
                            trace: softcell_telemetry::ReqTrace::NONE,
                        })
                        .expect("send");
                    }
                    for _ in 0..64 {
                        rx.recv().expect("reply").expect("classifier");
                    }
                    sent += 64;
                }
                sent
            })
        })
        .collect();
    let mut _client_sent = 0u64;
    for h in handles {
        _client_sent += h.join().expect("client");
    }
    let secs = start.elapsed().as_secs_f64();
    let served = server.served();
    let registry = server.telemetry();
    server.shutdown();
    (
        Row {
            workers,
            clients,
            requests: served,
            seconds: secs,
            requests_per_sec: served as f64 / secs,
        },
        registry.snapshot(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let duration = if is_quick(&args) {
        Duration::from_millis(300)
    } else {
        Duration::from_millis(1500)
    };

    println!("Central-controller classifier-request throughput");
    println!("(paper: 2.2M req/s with 15 threads on 8 cores; this host: 1 core)");
    let mut telemetry = Snapshot::default();
    let rows: Vec<Row> = [1usize, 2, 4, 8, 15]
        .iter()
        .map(|&w| {
            let (row, snap) = measure(w, 4, duration);
            telemetry.merge(&snap);
            row
        })
        .collect();

    let mut t = TextTable::new(&["workers", "clients", "requests", "secs", "req/s"]);
    for r in &rows {
        t.row(&[
            r.workers.to_string(),
            r.clients.to_string(),
            r.requests.to_string(),
            format!("{:.2}", r.seconds),
            format!("{:.0}", r.requests_per_sec),
        ]);
    }
    t.print();

    maybe_dump_json(
        &args,
        &Output {
            experiment: "micro-controller".into(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            rows,
        },
    );
    telemetry.merge(&Registry::global().snapshot());
    maybe_dump_telemetry(&args, &telemetry);
}
