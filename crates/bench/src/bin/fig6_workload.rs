//! Figure 6 — LTE workload characteristics (paper §6.1).
//!
//! The paper plots three CDFs from a proprietary metro trace; this
//! binary regenerates them from the calibrated synthetic model (see
//! `softcell-workload` and DESIGN.md §2):
//!
//! * Fig 6(a): network-wide UE arrivals and handoffs per second
//!   (paper 99.999-pct: 214 and 280);
//! * Fig 6(b): active UEs per base station (paper 99.999-pct: 514);
//! * Fig 6(c): radio-bearer arrivals per second per base station
//!   (paper 99.999-pct: 34).
//!
//! Usage: `fig6_workload [--quick] [--seed N] [--json PATH]`

use serde::Serialize;
use softcell_bench::{arg_usize, is_quick, maybe_dump_json, timed, TextTable};
use softcell_workload::{Cdf, MetroModel};

#[derive(Serialize)]
struct SeriesSummary {
    name: String,
    paper_p99999: f64,
    measured_p99999: f64,
    median: f64,
    mean: f64,
    max: f64,
    curve: Vec<(f64, f64)>,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    seed: u64,
    total_arrivals: u64,
    total_handoffs: u64,
    series: Vec<SeriesSummary>,
}

fn summarize(name: &str, paper: f64, cdf: &Cdf) -> SeriesSummary {
    SeriesSummary {
        name: name.to_string(),
        paper_p99999: paper,
        measured_p99999: cdf.quantile(0.99999),
        median: cdf.median(),
        mean: cdf.mean(),
        max: cdf.max(),
        curve: cdf.curve(20),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_usize(&args, "--seed").unwrap_or(42) as u64;
    let model = if is_quick(&args) {
        MetroModel::small(seed)
    } else {
        MetroModel::paper_metro(seed)
    };

    println!(
        "Synthetic metro LTE workload: {} base stations, {} subscribers, one weekday",
        model.base_stations, model.ues
    );
    let (stats, secs) = timed(|| model.generate());
    eprintln!("generated in {secs:.1}s");

    let series = vec![
        summarize(
            "fig6a: UE arrivals/s (network)",
            214.0,
            &stats.ue_arrivals_per_sec,
        ),
        summarize(
            "fig6a: handoffs/s (network)",
            280.0,
            &stats.handoffs_per_sec,
        ),
        summarize(
            "fig6b: active UEs per station",
            514.0,
            &stats.active_per_station,
        ),
        summarize(
            "fig6c: bearer arrivals/s per station",
            34.0,
            &stats.bearers_per_station_sec,
        ),
    ];

    let mut t = TextTable::new(&[
        "series",
        "paper p99.999",
        "measured",
        "median",
        "mean",
        "max",
    ]);
    for s in &series {
        t.row(&[
            s.name.clone(),
            format!("{:.0}", s.paper_p99999),
            format!("{:.0}", s.measured_p99999),
            format!("{:.0}", s.median),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.max),
        ]);
    }
    t.print();
    println!(
        "\nday totals: {} UE arrivals, {} handoffs",
        stats.total_arrivals, stats.total_handoffs
    );

    println!("\nCDF curves (value @ cumulative fraction):");
    for s in &series {
        let pts: Vec<String> = s
            .curve
            .iter()
            .step_by(4)
            .map(|(v, p)| format!("{v:.0}@{p:.2}"))
            .collect();
        println!("  {:45} {}", s.name, pts.join("  "));
    }

    maybe_dump_json(
        &args,
        &Output {
            experiment: "fig6".into(),
            seed,
            total_arrivals: stats.total_arrivals,
            total_handoffs: stats.total_handoffs,
            series,
        },
    );
}
