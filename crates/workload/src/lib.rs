//! Synthetic LTE workload (the paper-§6.1 trace substitute).
//!
//! The paper measures one week of bearer-level traces from a large ISP's
//! LTE network — about 1 TB covering a metro area with ~1500 base
//! stations and ~1 million devices — and reports, for a typical weekday:
//!
//! * 99.999-percentile **UE arrivals**: 214/s network-wide (Fig 6a);
//! * 99.999-percentile **handoffs**: 280/s network-wide (Fig 6a);
//! * **active UEs per base station**: typically hundreds, 99.999-pct 514
//!   (Fig 6b);
//! * **radio-bearer arrivals per base station**: 99.999-pct 34/s
//!   (Fig 6c).
//!
//! That trace is proprietary; this crate generates a synthetic workload
//! whose *distributions* are calibrated to those published statistics —
//! which is all the paper's evaluation consumes from the data (the
//! distributions size the control-plane load the controller must
//! absorb). See DESIGN.md §2 for the substitution argument.
//!
//! * [`diurnal`] — the day-shaped rate modulation.
//! * [`model`] — the metro-scale statistical model producing per-second
//!   count series and per-station snapshots (fast; no per-UE state).
//! * [`stats`] — empirical CDFs and percentiles (what Fig 6 plots).
//! * [`events`] — a concrete, per-UE event stream (attach / handoff /
//!   bearer / detach) at configurable scale, driving the end-to-end
//!   simulator and the agent benchmarks.
//!
//! # Seed-stability contract
//!
//! Every generator in this crate is **deterministic in its
//! configuration**: two calls with identical config structs — including
//! the `seed` field — produce byte-identical output, on every platform
//! and at every optimization level. Concretely:
//!
//! * [`EventStream::generate`] with equal [`EventStreamConfig`] values
//!   yields traces that compare equal event-for-event (same times, same
//!   IMSIs, same kinds, same order).
//! * [`EventStream::warp_diurnal`] is a pure function of the input
//!   trace and its arguments; warping equal traces yields equal traces.
//! * [`MetroModel::generate`] with an equal model yields equal
//!   [`DayStats`].
//!
//! The contract is load-bearing: the scenario campaign driver
//! (`crates/scenario`) replays a failing run from `(config, seed)`
//! alone, and CI's determinism gate asserts byte-identical serialized
//! traces and fabric dumps across runs. To keep it, generators must
//! only draw randomness from the seeded [`rand::StdRng`] streams they
//! own (never `HashMap` iteration order, wall clock, or thread timing),
//! and ties in event time must be broken by a total order (the
//! canonical trace order is `(time, imsi)` under a stable sort).
//!
//! Changing any distribution constant, the RNG draw order, or the
//! tie-break rule is a **contract-breaking change**: it silently
//! invalidates recorded `(seed, virtual-time)` replay coordinates.
//! Do it only with a note in CHANGES.md and new golden expectations in
//! the determinism tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diurnal;
pub mod events;
pub mod model;
pub mod stats;

pub use events::{EventKind, EventStream, EventStreamConfig, TraceEvent};
pub use model::{DayStats, MetroModel};
pub use stats::Cdf;
