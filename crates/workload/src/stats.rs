//! Empirical CDFs and percentiles — what Figure 6 plots.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (order irrelevant).
    pub fn from_samples(mut samples: Vec<f64>) -> Cdf {
        samples.retain(|x| x.is_finite());
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Builds from integer counts.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Cdf {
        Cdf::from_samples(counts.into_iter().map(|c| c as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-quantile (p in [0, 1]), by nearest-rank on the sorted
    /// samples. The paper quotes "99.999 percentile" = `quantile(0.99999)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile wants p in [0,1]");
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Median shorthand.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// `P(X <= x)`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `n` evenly spaced `(value, cumulative_fraction)` points for
    /// plotting/printing the CDF curve.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (1..=n)
            .map(|i| {
                let p = i as f64 / n as f64;
                (self.quantile(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let c = Cdf::from_counts(1..=100u64);
        assert_eq!(c.quantile(0.5), 50.0);
        assert_eq!(c.quantile(0.99), 99.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.quantile(0.01), 1.0);
        assert_eq!(c.max(), 100.0);
        assert!((c.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn fraction_below_matches_quantile() {
        let c = Cdf::from_counts(1..=1000u64);
        assert!((c.fraction_below(500.0) - 0.5).abs() < 2e-3);
        assert_eq!(c.fraction_below(0.0), 0.0);
        assert_eq!(c.fraction_below(2000.0), 1.0);
    }

    #[test]
    fn curve_is_monotone() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 10.0, 4.0]);
        let pts = c.curve(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().0, 10.0);
    }

    #[test]
    fn empty_and_nan_handling() {
        let c = Cdf::from_samples(vec![f64::NAN, f64::INFINITY]);
        assert!(c.is_empty());
        assert!(c.quantile(0.5).is_nan());
        assert!(c.curve(5).is_empty());
    }

    proptest! {
        #[test]
        fn prop_quantile_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let c = Cdf::from_samples(samples);
            let mut last = f64::NEG_INFINITY;
            for i in 1..=20 {
                let q = c.quantile(i as f64 / 20.0);
                prop_assert!(q >= last);
                last = q;
            }
        }

        #[test]
        fn prop_quantile_within_range(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let c = Cdf::from_samples(samples.clone());
            let q = c.quantile(0.7);
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q >= lo && q <= hi);
        }
    }
}
