//! Diurnal load shaping.
//!
//! Cellular load follows a strong day/night cycle: a deep trough in the
//! early morning, a ramp through the morning commute, sustained daytime
//! load and an evening peak. Measurement studies (e.g. the paper's ref
//! \[26\], Zhang & Arvidsson) show roughly a 3–5× peak-to-trough ratio.
//! [`DiurnalShape`] is a smooth two-harmonic approximation of that
//! profile, normalized so its *peak* is 1.0 — calibration in the metro
//! model then scales published peak-tail targets directly.

/// A smooth day-shaped modulation, periodic over 24 h.
#[derive(Clone, Copy, Debug)]
pub struct DiurnalShape {
    /// Trough-to-peak floor (0..1): 0.25 means night load is 25 % of
    /// peak.
    pub floor: f64,
    /// Hour of the main (evening) peak.
    pub peak_hour: f64,
}

impl Default for DiurnalShape {
    fn default() -> Self {
        DiurnalShape {
            floor: 0.25,
            peak_hour: 20.0,
        }
    }
}

impl DiurnalShape {
    /// The modulation factor at a given second of the day, in
    /// `[floor, 1.0]`, peaking at `peak_hour`.
    pub fn factor(&self, second_of_day: u64) -> f64 {
        let h = (second_of_day % 86_400) as f64 / 3600.0;
        let x = (h - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        // main daily harmonic plus a morning-shoulder second harmonic
        let raw = 0.8 * x.cos() + 0.2 * (2.0 * x).cos();
        let normalized = (raw + 1.0) / 2.0; // [0, 1], peak 1 at peak_hour
        self.floor + (1.0 - self.floor) * normalized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_at_peak_hour_and_bounded() {
        let s = DiurnalShape::default();
        let peak = s.factor(20 * 3600);
        for hour in 0..24 {
            let f = s.factor(hour * 3600);
            assert!(f <= peak + 1e-9, "hour {hour} exceeds the peak");
            assert!(f >= s.floor - 1e-9 && f <= 1.0 + 1e-9);
        }
        assert!((peak - 1.0).abs() < 1e-9, "peak normalizes to 1.0");
    }

    #[test]
    fn trough_is_at_night() {
        let s = DiurnalShape::default();
        let night = s.factor(5 * 3600);
        let day = s.factor(14 * 3600);
        assert!(night < day, "5am load below 2pm load");
        assert!(night < 0.5, "night near the floor");
    }

    #[test]
    fn periodic_over_24h() {
        let s = DiurnalShape::default();
        assert!((s.factor(3600) - s.factor(86_400 + 3600)).abs() < 1e-12);
    }
}
