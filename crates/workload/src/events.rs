//! Concrete per-UE event streams.
//!
//! Where [`crate::model`] samples aggregate counts for the metro-scale
//! Fig 6 statistics, this module generates an explicit, time-ordered
//! trace of attach / new-flow / handoff / detach events for a bounded UE
//! population — the input to the end-to-end simulator and the local-agent
//! benchmarks. Sessions are exponential, flows within a session arrive
//! as a Poisson process, and handoffs move the UE between neighbouring
//! stations (cellular mobility is local).
//!
//! A generated trace is homogeneous in time; [`EventStream::warp_diurnal`]
//! rescales it onto a day-shaped intensity (see
//! [`crate::diurnal::DiurnalShape`]) via the classic inhomogeneous-Poisson
//! time-rescaling construction, preserving per-UE causal order exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::diurnal::DiurnalShape;
use softcell_types::{BaseStationId, SimDuration, SimTime, UeImsi};

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// UE powers on / attaches at a station.
    Attach {
        /// The station.
        bs: BaseStationId,
    },
    /// UE starts a new flow; `dst_port`/`udp` sketch the application.
    NewFlow {
        /// Station the UE is currently at.
        bs: BaseStationId,
        /// Destination port (drives application classification).
        dst_port: u16,
        /// UDP instead of TCP.
        udp: bool,
    },
    /// UE moves between stations.
    Handoff {
        /// Station it leaves.
        from: BaseStationId,
        /// Station it enters.
        to: BaseStationId,
    },
    /// UE detaches.
    Detach {
        /// Station it leaves.
        bs: BaseStationId,
    },
}

/// One trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When.
    pub time: SimTime,
    /// Which UE.
    pub imsi: UeImsi,
    /// What.
    pub kind: EventKind,
}

/// Event-stream parameters.
#[derive(Clone, Copy, Debug)]
pub struct EventStreamConfig {
    /// Stations in the (simulated) network.
    pub base_stations: u32,
    /// UE population.
    pub ues: u64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Mean attached-session length.
    pub mean_session: SimDuration,
    /// Mean gap between sessions of one UE.
    pub mean_gap: SimDuration,
    /// Mean flow inter-arrival while attached.
    pub mean_flow_gap: SimDuration,
    /// Mean time between handoffs while attached (mobility).
    pub mean_handoff_gap: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl EventStreamConfig {
    /// A busy small-cell scenario for simulations and tests.
    pub fn busy(base_stations: u32, ues: u64, seed: u64) -> Self {
        EventStreamConfig {
            base_stations,
            ues,
            duration: SimDuration::from_secs(600),
            mean_session: SimDuration::from_secs(180),
            mean_gap: SimDuration::from_secs(120),
            mean_flow_gap: SimDuration::from_secs(15),
            mean_handoff_gap: SimDuration::from_secs(90),
            seed,
        }
    }
}

/// A generated, time-sorted trace.
#[derive(Clone, Debug)]
pub struct EventStream {
    events: Vec<TraceEvent>,
}

/// Common application destination ports, weighted towards web traffic
/// (drives the policy classifier in simulations).
const APP_PORTS: [(u16, bool, u32); 7] = [
    (443, false, 50), // web
    (80, false, 20),  // web
    (554, false, 10), // video
    (5060, true, 8),  // voip
    (53, true, 6),    // dns
    (993, false, 3),  // email
    (8883, false, 3), // mqtt
];

impl EventStream {
    /// Generates the trace.
    pub fn generate(cfg: &EventStreamConfig) -> EventStream {
        assert!(cfg.base_stations > 0, "need at least one station");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut events = Vec::new();
        let horizon = cfg.duration.as_micros();
        let total_weight: u32 = APP_PORTS.iter().map(|(_, _, w)| w).sum();

        for ue in 0..cfg.ues {
            let imsi = UeImsi(ue);
            let home = BaseStationId(rng.gen_range(0..cfg.base_stations));
            // stagger initial power-on through the first gap
            let mut t = exp_micros(&mut rng, cfg.mean_gap) % (horizon / 2).max(1);
            while t < horizon {
                // session starts: attach
                let mut bs = home;
                events.push(TraceEvent {
                    time: SimTime(t),
                    imsi,
                    kind: EventKind::Attach { bs },
                });
                let session_end = (t + exp_micros(&mut rng, cfg.mean_session)).min(horizon);

                // flows and handoffs interleave within the session; a
                // single-station network has nowhere to hand off to, so
                // mobility is disabled rather than emitting degenerate
                // `from == to` handoffs
                let mut next_flow = t + exp_micros(&mut rng, cfg.mean_flow_gap);
                let mut next_hof = if cfg.base_stations >= 2 {
                    t + exp_micros(&mut rng, cfg.mean_handoff_gap)
                } else {
                    u64::MAX
                };
                loop {
                    let next = next_flow.min(next_hof);
                    if next >= session_end {
                        break;
                    }
                    if next_flow <= next_hof {
                        let mut pick = rng.gen_range(0..total_weight);
                        let mut port = (443, false);
                        for &(p, udp, w) in &APP_PORTS {
                            if pick < w {
                                port = (p, udp);
                                break;
                            }
                            pick -= w;
                        }
                        events.push(TraceEvent {
                            time: SimTime(next_flow),
                            imsi,
                            kind: EventKind::NewFlow {
                                bs,
                                dst_port: port.0,
                                udp: port.1,
                            },
                        });
                        next_flow += exp_micros(&mut rng, cfg.mean_flow_gap);
                    } else {
                        // neighbouring-cell mobility: ±1 ring around the
                        // current station
                        let to = neighbour(&mut rng, bs, cfg.base_stations);
                        events.push(TraceEvent {
                            time: SimTime(next_hof),
                            imsi,
                            kind: EventKind::Handoff { from: bs, to },
                        });
                        bs = to;
                        next_hof += exp_micros(&mut rng, cfg.mean_handoff_gap);
                    }
                }

                if session_end < horizon {
                    events.push(TraceEvent {
                        time: SimTime(session_end),
                        imsi,
                        kind: EventKind::Detach { bs },
                    });
                }
                t = session_end + exp_micros(&mut rng, cfg.mean_gap);
            }
        }

        events.sort_by_key(|e| (e.time, e.imsi));
        EventStream { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events of a given coarse kind (diagnostics).
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// The trace validity oracle: globally time-ordered, and causally
    /// well-formed per UE — attach precedes any flow/handoff/detach, no
    /// events while detached, handoffs chain `from → to` between
    /// *distinct* stations within bounds, flows and detaches name the
    /// UE's current station. The scenario campaign driver and the
    /// property tests both gate on this.
    pub fn check_well_formed(&self, base_stations: u32) -> softcell_types::Result<()> {
        use softcell_types::Error;
        use std::collections::HashMap;
        let err = |msg: String| Err(Error::InvalidState(msg));
        let mut last = SimTime::ZERO;
        let mut at: HashMap<UeImsi, Option<BaseStationId>> = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if e.time < last {
                return err(format!("event {i} at {:?} precedes {:?}", e.time, last));
            }
            last = e.time;
            let station_ok = |bs: BaseStationId| bs.0 < base_stations;
            let slot = at.entry(e.imsi).or_default();
            match e.kind {
                EventKind::Attach { bs } => {
                    if slot.is_some() {
                        return err(format!("event {i}: {} attach while attached", e.imsi));
                    }
                    if !station_ok(bs) {
                        return err(format!("event {i}: attach at out-of-range {bs}"));
                    }
                    *slot = Some(bs);
                }
                EventKind::NewFlow { bs, .. } => {
                    if *slot != Some(bs) {
                        return err(format!(
                            "event {i}: {} flow at {bs}, attached at {:?}",
                            e.imsi, slot
                        ));
                    }
                }
                EventKind::Handoff { from, to } => {
                    if from == to {
                        return err(format!("event {i}: degenerate handoff {from} -> {to}"));
                    }
                    if *slot != Some(from) {
                        return err(format!(
                            "event {i}: {} handoff from {from}, attached at {:?}",
                            e.imsi, slot
                        ));
                    }
                    if !station_ok(to) {
                        return err(format!("event {i}: handoff to out-of-range {to}"));
                    }
                    *slot = Some(to);
                }
                EventKind::Detach { bs } => {
                    if *slot != Some(bs) {
                        return err(format!(
                            "event {i}: {} detach at {bs}, attached at {:?}",
                            e.imsi, slot
                        ));
                    }
                    *slot = None;
                }
            }
        }
        Ok(())
    }

    /// Rescales the trace onto a day-shaped intensity: an event at
    /// fraction `u` of `source_horizon` lands at the virtual time `v`
    /// where the normalized cumulative diurnal intensity `Λ(v)/Λ(day)`
    /// equals `u` (inhomogeneous-Poisson time rescaling). The mapping is
    /// monotone, so global time order and per-UE causal order survive
    /// unchanged; event *density* on the virtual axis follows
    /// `shape.factor` — peak-hour seconds carry 1/floor× the trough
    /// load. `virtual_day / source_horizon` is the campaign's
    /// time-compression factor.
    ///
    /// The output is re-sorted by the canonical `(time, imsi)` key; the
    /// stable sort keeps each UE's equal-time events in causal order
    /// (see the seed-stability contract in the crate docs).
    pub fn warp_diurnal(
        &self,
        shape: &DiurnalShape,
        source_horizon: SimDuration,
        virtual_day: SimDuration,
    ) -> EventStream {
        let src = source_horizon.as_micros().max(1);
        let day = virtual_day.as_micros().max(1);
        // cumulative intensity sampled once per virtual minute (or at
        // least 256 samples for short virtual spans)
        let steps = ((day / 60_000_000).max(256) + 1) as usize;
        let dt = day as f64 / (steps - 1) as f64;
        let mut cum = Vec::with_capacity(steps);
        let mut acc = 0.0f64;
        cum.push(0.0);
        for i in 1..steps {
            let t_mid = (i as f64 - 0.5) * dt / 1e6; // seconds
            acc += shape.factor(t_mid as u64) * dt;
            cum.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);

        let mut events = self.events.clone();
        for e in &mut events {
            let u = (e.time.as_micros().min(src) as f64 / src as f64) * total;
            // binary search the cumulative table, then interpolate
            let hi = cum.partition_point(|&c| c < u).clamp(1, steps - 1);
            let lo = hi - 1;
            let span = (cum[hi] - cum[lo]).max(f64::MIN_POSITIVE);
            let frac = ((u - cum[lo]) / span).clamp(0.0, 1.0);
            let v = (lo as f64 + frac) * dt;
            e.time = SimTime((v as u64).min(day));
        }
        events.sort_by_key(|e| (e.time, e.imsi));
        EventStream { events }
    }
}

fn exp_micros(rng: &mut StdRng, mean: SimDuration) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln() * mean.as_micros() as f64) as u64
}

fn neighbour(rng: &mut StdRng, bs: BaseStationId, n: u32) -> BaseStationId {
    if n == 1 {
        return bs;
    }
    let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
    BaseStationId(((bs.0 as i64 + delta).rem_euclid(n as i64)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EventStreamConfig {
        EventStreamConfig::busy(10, 50, 1)
    }

    #[test]
    fn trace_is_time_sorted() {
        let s = EventStream::generate(&cfg());
        assert!(!s.is_empty());
        for w in s.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn per_ue_lifecycle_is_consistent() {
        // attach → (flows/handoffs)* → detach, never a flow while
        // detached, handoff chains match stations
        let s = EventStream::generate(&cfg());
        use std::collections::HashMap;
        let mut at: HashMap<UeImsi, Option<BaseStationId>> = HashMap::new();
        for e in s.events() {
            let slot = at.entry(e.imsi).or_default();
            match e.kind {
                EventKind::Attach { bs } => {
                    assert!(slot.is_none(), "attach while attached");
                    *slot = Some(bs);
                }
                EventKind::NewFlow { bs, .. } => {
                    assert_eq!(*slot, Some(bs), "flow at the wrong station");
                }
                EventKind::Handoff { from, to } => {
                    assert_eq!(*slot, Some(from), "handoff from the wrong station");
                    *slot = Some(to);
                }
                EventKind::Detach { bs } => {
                    assert_eq!(*slot, Some(bs), "detach at the wrong station");
                    *slot = None;
                }
            }
        }
    }

    #[test]
    fn all_event_kinds_occur() {
        let s = EventStream::generate(&cfg());
        assert!(s.count(|k| matches!(k, EventKind::Attach { .. })) > 0);
        assert!(s.count(|k| matches!(k, EventKind::NewFlow { .. })) > 0);
        assert!(s.count(|k| matches!(k, EventKind::Handoff { .. })) > 0);
        assert!(s.count(|k| matches!(k, EventKind::Detach { .. })) > 0);
    }

    #[test]
    fn flows_dominate_other_events() {
        // flow arrivals are the common case (cache-hit path in Table 2)
        let s = EventStream::generate(&cfg());
        let flows = s.count(|k| matches!(k, EventKind::NewFlow { .. }));
        let handoffs = s.count(|k| matches!(k, EventKind::Handoff { .. }));
        assert!(flows > handoffs, "{flows} flows vs {handoffs} handoffs");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = EventStream::generate(&cfg());
        let b = EventStream::generate(&cfg());
        assert_eq!(a.events(), b.events());
        let c = EventStream::generate(&EventStreamConfig { seed: 2, ..cfg() });
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn single_station_trace_has_no_handoffs() {
        // base_stations == 1: mobility is disabled instead of emitting
        // degenerate `from == to` handoffs
        let s = EventStream::generate(&EventStreamConfig::busy(1, 50, 7));
        assert_eq!(s.count(|k| matches!(k, EventKind::Handoff { .. })), 0);
        s.check_well_formed(1).unwrap();
    }

    #[test]
    fn warp_preserves_causality_and_counts() {
        let c = cfg();
        let s = EventStream::generate(&c);
        let day = SimDuration::from_secs(24 * 3600);
        let w = s.warp_diurnal(&crate::diurnal::DiurnalShape::default(), c.duration, day);
        w.check_well_formed(c.base_stations).unwrap();
        assert_eq!(w.len(), s.len());
        for e in w.events() {
            assert!(e.time.as_micros() <= day.as_micros());
        }
        // density follows the day shape: the 4-hour window around the
        // evening peak carries more events than the one around 4 am
        let count_in = |lo: u64, hi: u64| {
            w.events()
                .iter()
                .filter(|e| {
                    let s = e.time.as_micros() / 1_000_000;
                    (lo..hi).contains(&s)
                })
                .count()
        };
        let peak = count_in(18 * 3600, 22 * 3600);
        let trough = count_in(2 * 3600, 6 * 3600);
        assert!(
            peak > trough * 2,
            "diurnal density missing: peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn warp_is_deterministic() {
        let c = cfg();
        let day = SimDuration::from_secs(24 * 3600);
        let shape = crate::diurnal::DiurnalShape::default();
        let a = EventStream::generate(&c).warp_diurnal(&shape, c.duration, day);
        let b = EventStream::generate(&c).warp_diurnal(&shape, c.duration, day);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn events_stay_within_horizon_and_stations() {
        let c = cfg();
        let s = EventStream::generate(&c);
        for e in s.events() {
            assert!(e.time.as_micros() <= c.duration.as_micros());
            let bs = match e.kind {
                EventKind::Attach { bs }
                | EventKind::NewFlow { bs, .. }
                | EventKind::Detach { bs } => bs,
                EventKind::Handoff { from, to } => {
                    assert!(to.0 < c.base_stations);
                    from
                }
            };
            assert!(bs.0 < c.base_stations);
        }
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_trace_causally_well_formed(
            stations in 1u32..6,
            ues in 1u64..24,
            seed in 0u64..1_000_000,
            duration_s in 30u64..600,
            session_s in 5u64..300,
            gap_s in 1u64..200,
            flow_s in 1u64..40,
            hof_s in 1u64..90,
        ) {
            let cfg = EventStreamConfig {
                base_stations: stations,
                ues,
                duration: SimDuration::from_secs(duration_s),
                mean_session: SimDuration::from_secs(session_s),
                mean_gap: SimDuration::from_secs(gap_s),
                mean_flow_gap: SimDuration::from_secs(flow_s),
                mean_handoff_gap: SimDuration::from_secs(hof_s),
                seed,
            };
            let s = EventStream::generate(&cfg);
            if let Err(e) = s.check_well_formed(stations) {
                prop_assert!(false, "trace ill-formed for {cfg:?}: {e}");
            }
            for e in s.events() {
                prop_assert!(e.time.as_micros() <= cfg.duration.as_micros());
            }
        }

        #[test]
        fn prop_warp_preserves_well_formedness(
            stations in 2u32..6,
            ues in 1u64..16,
            seed in 0u64..1_000_000,
            compress in 2u64..1_000,
        ) {
            let cfg = EventStreamConfig::busy(stations, ues, seed);
            let s = EventStream::generate(&cfg);
            let day = SimDuration::from_secs(24 * 3600);
            let dense = SimDuration::from_micros(
                (day.as_micros() / compress).max(1),
            );
            let w = s.warp_diurnal(&DiurnalShape::default(), cfg.duration, dense)
                .warp_diurnal(&DiurnalShape::default(), dense, day);
            prop_assert_eq!(w.len(), s.len());
            if let Err(e) = w.check_well_formed(stations) {
                prop_assert!(false, "warped trace ill-formed (seed {seed}): {e}");
            }
        }
    }
}
