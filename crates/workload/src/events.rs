//! Concrete per-UE event streams.
//!
//! Where [`crate::model`] samples aggregate counts for the metro-scale
//! Fig 6 statistics, this module generates an explicit, time-ordered
//! trace of attach / new-flow / handoff / detach events for a bounded UE
//! population — the input to the end-to-end simulator and the local-agent
//! benchmarks. Sessions are exponential, flows within a session arrive
//! as a Poisson process, and handoffs move the UE between neighbouring
//! stations (cellular mobility is local).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use softcell_types::{BaseStationId, SimDuration, SimTime, UeImsi};

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// UE powers on / attaches at a station.
    Attach {
        /// The station.
        bs: BaseStationId,
    },
    /// UE starts a new flow; `dst_port`/`udp` sketch the application.
    NewFlow {
        /// Station the UE is currently at.
        bs: BaseStationId,
        /// Destination port (drives application classification).
        dst_port: u16,
        /// UDP instead of TCP.
        udp: bool,
    },
    /// UE moves between stations.
    Handoff {
        /// Station it leaves.
        from: BaseStationId,
        /// Station it enters.
        to: BaseStationId,
    },
    /// UE detaches.
    Detach {
        /// Station it leaves.
        bs: BaseStationId,
    },
}

/// One trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When.
    pub time: SimTime,
    /// Which UE.
    pub imsi: UeImsi,
    /// What.
    pub kind: EventKind,
}

/// Event-stream parameters.
#[derive(Clone, Copy, Debug)]
pub struct EventStreamConfig {
    /// Stations in the (simulated) network.
    pub base_stations: u32,
    /// UE population.
    pub ues: u64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Mean attached-session length.
    pub mean_session: SimDuration,
    /// Mean gap between sessions of one UE.
    pub mean_gap: SimDuration,
    /// Mean flow inter-arrival while attached.
    pub mean_flow_gap: SimDuration,
    /// Mean time between handoffs while attached (mobility).
    pub mean_handoff_gap: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl EventStreamConfig {
    /// A busy small-cell scenario for simulations and tests.
    pub fn busy(base_stations: u32, ues: u64, seed: u64) -> Self {
        EventStreamConfig {
            base_stations,
            ues,
            duration: SimDuration::from_secs(600),
            mean_session: SimDuration::from_secs(180),
            mean_gap: SimDuration::from_secs(120),
            mean_flow_gap: SimDuration::from_secs(15),
            mean_handoff_gap: SimDuration::from_secs(90),
            seed,
        }
    }
}

/// A generated, time-sorted trace.
#[derive(Clone, Debug)]
pub struct EventStream {
    events: Vec<TraceEvent>,
}

/// Common application destination ports, weighted towards web traffic
/// (drives the policy classifier in simulations).
const APP_PORTS: [(u16, bool, u32); 7] = [
    (443, false, 50), // web
    (80, false, 20),  // web
    (554, false, 10), // video
    (5060, true, 8),  // voip
    (53, true, 6),    // dns
    (993, false, 3),  // email
    (8883, false, 3), // mqtt
];

impl EventStream {
    /// Generates the trace.
    pub fn generate(cfg: &EventStreamConfig) -> EventStream {
        assert!(cfg.base_stations > 0, "need at least one station");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut events = Vec::new();
        let horizon = cfg.duration.as_micros();
        let total_weight: u32 = APP_PORTS.iter().map(|(_, _, w)| w).sum();

        for ue in 0..cfg.ues {
            let imsi = UeImsi(ue);
            let home = BaseStationId(rng.gen_range(0..cfg.base_stations));
            // stagger initial power-on through the first gap
            let mut t = exp_micros(&mut rng, cfg.mean_gap) % (horizon / 2).max(1);
            while t < horizon {
                // session starts: attach
                let mut bs = home;
                events.push(TraceEvent {
                    time: SimTime(t),
                    imsi,
                    kind: EventKind::Attach { bs },
                });
                let session_end = (t + exp_micros(&mut rng, cfg.mean_session)).min(horizon);

                // flows and handoffs interleave within the session
                let mut next_flow = t + exp_micros(&mut rng, cfg.mean_flow_gap);
                let mut next_hof = t + exp_micros(&mut rng, cfg.mean_handoff_gap);
                loop {
                    let next = next_flow.min(next_hof);
                    if next >= session_end {
                        break;
                    }
                    if next_flow <= next_hof {
                        let mut pick = rng.gen_range(0..total_weight);
                        let mut port = (443, false);
                        for &(p, udp, w) in &APP_PORTS {
                            if pick < w {
                                port = (p, udp);
                                break;
                            }
                            pick -= w;
                        }
                        events.push(TraceEvent {
                            time: SimTime(next_flow),
                            imsi,
                            kind: EventKind::NewFlow {
                                bs,
                                dst_port: port.0,
                                udp: port.1,
                            },
                        });
                        next_flow += exp_micros(&mut rng, cfg.mean_flow_gap);
                    } else {
                        // neighbouring-cell mobility: ±1 ring around the
                        // current station
                        let to = neighbour(&mut rng, bs, cfg.base_stations);
                        events.push(TraceEvent {
                            time: SimTime(next_hof),
                            imsi,
                            kind: EventKind::Handoff { from: bs, to },
                        });
                        bs = to;
                        next_hof += exp_micros(&mut rng, cfg.mean_handoff_gap);
                    }
                }

                if session_end < horizon {
                    events.push(TraceEvent {
                        time: SimTime(session_end),
                        imsi,
                        kind: EventKind::Detach { bs },
                    });
                }
                t = session_end + exp_micros(&mut rng, cfg.mean_gap);
            }
        }

        events.sort_by_key(|e| (e.time, e.imsi));
        EventStream { events }
    }

    /// The events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of events of a given coarse kind (diagnostics).
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

fn exp_micros(rng: &mut StdRng, mean: SimDuration) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln() * mean.as_micros() as f64) as u64
}

fn neighbour(rng: &mut StdRng, bs: BaseStationId, n: u32) -> BaseStationId {
    if n == 1 {
        return bs;
    }
    let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
    BaseStationId(((bs.0 as i64 + delta).rem_euclid(n as i64)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EventStreamConfig {
        EventStreamConfig::busy(10, 50, 1)
    }

    #[test]
    fn trace_is_time_sorted() {
        let s = EventStream::generate(&cfg());
        assert!(!s.is_empty());
        for w in s.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn per_ue_lifecycle_is_consistent() {
        // attach → (flows/handoffs)* → detach, never a flow while
        // detached, handoff chains match stations
        let s = EventStream::generate(&cfg());
        use std::collections::HashMap;
        let mut at: HashMap<UeImsi, Option<BaseStationId>> = HashMap::new();
        for e in s.events() {
            let slot = at.entry(e.imsi).or_default();
            match e.kind {
                EventKind::Attach { bs } => {
                    assert!(slot.is_none(), "attach while attached");
                    *slot = Some(bs);
                }
                EventKind::NewFlow { bs, .. } => {
                    assert_eq!(*slot, Some(bs), "flow at the wrong station");
                }
                EventKind::Handoff { from, to } => {
                    assert_eq!(*slot, Some(from), "handoff from the wrong station");
                    *slot = Some(to);
                }
                EventKind::Detach { bs } => {
                    assert_eq!(*slot, Some(bs), "detach at the wrong station");
                    *slot = None;
                }
            }
        }
    }

    #[test]
    fn all_event_kinds_occur() {
        let s = EventStream::generate(&cfg());
        assert!(s.count(|k| matches!(k, EventKind::Attach { .. })) > 0);
        assert!(s.count(|k| matches!(k, EventKind::NewFlow { .. })) > 0);
        assert!(s.count(|k| matches!(k, EventKind::Handoff { .. })) > 0);
        assert!(s.count(|k| matches!(k, EventKind::Detach { .. })) > 0);
    }

    #[test]
    fn flows_dominate_other_events() {
        // flow arrivals are the common case (cache-hit path in Table 2)
        let s = EventStream::generate(&cfg());
        let flows = s.count(|k| matches!(k, EventKind::NewFlow { .. }));
        let handoffs = s.count(|k| matches!(k, EventKind::Handoff { .. }));
        assert!(flows > handoffs, "{flows} flows vs {handoffs} handoffs");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = EventStream::generate(&cfg());
        let b = EventStream::generate(&cfg());
        assert_eq!(a.events(), b.events());
        let c = EventStream::generate(&EventStreamConfig { seed: 2, ..cfg() });
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn events_stay_within_horizon_and_stations() {
        let c = cfg();
        let s = EventStream::generate(&c);
        for e in s.events() {
            assert!(e.time.as_micros() <= c.duration.as_micros());
            let bs = match e.kind {
                EventKind::Attach { bs }
                | EventKind::NewFlow { bs, .. }
                | EventKind::Detach { bs } => bs,
                EventKind::Handoff { from, to } => {
                    assert!(to.0 < c.base_stations);
                    from
                }
            };
            assert!(bs.0 < c.base_stations);
        }
    }
}
