//! The metro-scale statistical workload model (Fig 6 substitute).
//!
//! Generates one synthetic weekday for a metro LTE deployment (default:
//! 1500 base stations, 1 M devices — the paper's dataset shape) and
//! returns the four distributions Figure 6 reports. The model samples
//! *counts* directly (Poisson around diurnally-modulated means) rather
//! than simulating a million devices; each series is calibrated to the
//! corresponding published 99.999-percentile:
//!
//! | series | paper 99.999-pct | calibration knob |
//! |---|---|---|
//! | UE arrivals/s (network) | 214 | `peak_ue_arrivals_per_sec` |
//! | handoffs/s (network) | 280 | `peak_handoffs_per_sec` |
//! | active UEs per station | 514 | `peak_active_ues`, `station_weight_sigma` |
//! | bearer arrivals/s per station | 34 | `peak_bearers_per_active_ue` |
//!
//! Station popularity is log-normal (busy downtown cells vs. quiet
//! suburban ones); per-station series are sampled per minute, giving
//! ~2.2 M samples per distribution — enough to resolve the 99.999th
//! percentile.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::diurnal::DiurnalShape;
use crate::stats::Cdf;

/// Model parameters. `paper_metro()` matches the paper's deployment.
#[derive(Clone, Copy, Debug)]
pub struct MetroModel {
    /// Number of base stations.
    pub base_stations: usize,
    /// Subscriber population (scales nothing directly; documentation).
    pub ues: u64,
    /// RNG seed.
    pub seed: u64,
    /// Diurnal shape.
    pub shape: DiurnalShape,
    /// Network-wide UE attach rate at the daily peak (events/s).
    pub peak_ue_arrivals_per_sec: f64,
    /// Network-wide handoff rate at the daily peak (events/s).
    pub peak_handoffs_per_sec: f64,
    /// Active (RRC-connected) devices network-wide at the daily peak.
    pub peak_active_ues: f64,
    /// Log-normal sigma of station popularity weights.
    pub station_weight_sigma: f64,
    /// Radio-bearer arrivals per active UE per second at the peak.
    pub peak_bearers_per_active_ue: f64,
    /// Sampling period for per-station series (seconds).
    pub snapshot_period: u64,
}

impl MetroModel {
    /// The paper's metro deployment, calibrated to Fig 6 (see module
    /// docs; the peak means are solved from `q ≈ μ + 4.265·√μ`).
    pub fn paper_metro(seed: u64) -> MetroModel {
        MetroModel {
            base_stations: 1500,
            ues: 1_000_000,
            seed,
            shape: DiurnalShape::default(),
            peak_ue_arrivals_per_sec: 160.0,
            peak_handoffs_per_sec: 217.0,
            peak_active_ues: 400_000.0,
            station_weight_sigma: 0.20,
            peak_bearers_per_active_ue: 0.033,
            snapshot_period: 60,
        }
    }

    /// A smaller model for fast tests (same shape, fewer samples).
    pub fn small(seed: u64) -> MetroModel {
        MetroModel {
            base_stations: 100,
            ues: 50_000,
            peak_active_ues: 20_000.0,
            ..MetroModel::paper_metro(seed)
        }
    }

    /// Generates one day and collects the Fig 6 distributions.
    pub fn generate(&self) -> DayStats {
        let mut rng = StdRng::seed_from_u64(self.seed);

        // station popularity weights, normalized to sum 1
        let weights = lognormal_weights(&mut rng, self.base_stations, self.station_weight_sigma);

        // network-wide per-second series (Fig 6a)
        let mut arrivals = Vec::with_capacity(86_400);
        let mut handoffs = Vec::with_capacity(86_400);
        let mut total_arrivals = 0u64;
        let mut total_handoffs = 0u64;
        for s in 0..86_400u64 {
            let f = self.shape.factor(s);
            let a = poisson(&mut rng, self.peak_ue_arrivals_per_sec * f);
            let h = poisson(&mut rng, self.peak_handoffs_per_sec * f);
            total_arrivals += a;
            total_handoffs += h;
            arrivals.push(a);
            handoffs.push(h);
        }

        // per-station snapshots (Fig 6b, 6c)
        let snapshots = 86_400 / self.snapshot_period.max(1);
        let mut active = Vec::with_capacity(snapshots as usize * self.base_stations);
        let mut bearers = Vec::with_capacity(snapshots as usize * self.base_stations);
        for i in 0..snapshots {
            let t = i * self.snapshot_period;
            let f = self.shape.factor(t);
            let n_active = self.peak_active_ues * f;
            for &w in &weights {
                let a = poisson(&mut rng, n_active * w);
                active.push(a);
                let b = poisson(
                    &mut rng,
                    a as f64 * self.peak_bearers_per_active_ue * f.max(0.5),
                );
                bearers.push(b);
            }
        }

        DayStats {
            ue_arrivals_per_sec: Cdf::from_counts(arrivals),
            handoffs_per_sec: Cdf::from_counts(handoffs),
            active_per_station: Cdf::from_counts(active),
            bearers_per_station_sec: Cdf::from_counts(bearers),
            total_arrivals,
            total_handoffs,
        }
    }
}

/// The four Fig 6 distributions plus day totals.
#[derive(Clone, Debug)]
pub struct DayStats {
    /// Fig 6a, arrivals curve.
    pub ue_arrivals_per_sec: Cdf,
    /// Fig 6a, handoffs curve.
    pub handoffs_per_sec: Cdf,
    /// Fig 6b.
    pub active_per_station: Cdf,
    /// Fig 6c.
    pub bearers_per_station_sec: Cdf,
    /// Total attaches in the day.
    pub total_arrivals: u64,
    /// Total handoffs in the day.
    pub total_handoffs: u64,
}

/// Normalized log-normal popularity weights.
fn lognormal_weights(rng: &mut StdRng, n: usize, sigma: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..n)
        .map(|_| (standard_normal(rng) * sigma).exp())
        .collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// A standard normal via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A Poisson draw: Knuth's method for small means, normal approximation
/// for large ones (exact enough for tail percentiles at mean ≥ 30).
pub(crate) fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0f64..1.0);
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerically impossible; guard anyway
            }
        }
    }
    let z = standard_normal(rng);
    let x = mean + z * mean.sqrt() + 0.5;
    if x < 0.0 {
        0
    } else {
        x as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = StdRng::seed_from_u64(1);
        for mean in [0.5, 5.0, 50.0, 500.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let est = sum as f64 / n as f64;
            assert!(
                (est - mean).abs() < mean * 0.05 + 0.05,
                "mean {mean}: estimated {est}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn weights_normalize_and_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = lognormal_weights(&mut rng, 1500, 0.2);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let max = w.iter().cloned().fold(0.0, f64::max);
        let mean = 1.0 / 1500.0;
        assert!(
            max > mean * 1.3 && max < mean * 4.0,
            "busy cells exist but are bounded"
        );
    }

    #[test]
    fn paper_metro_hits_published_percentiles() {
        // The headline calibration check: all four 99.999-percentiles
        // within ±20 % of the paper's numbers.
        let stats = MetroModel::paper_metro(42).generate();
        let q = 0.99999;
        let arr = stats.ue_arrivals_per_sec.quantile(q);
        let hof = stats.handoffs_per_sec.quantile(q);
        let act = stats.active_per_station.quantile(q);
        let brs = stats.bearers_per_station_sec.quantile(q);
        assert!(
            (170.0..=260.0).contains(&arr),
            "arrivals p99.999 = {arr} (paper: 214)"
        );
        assert!(
            (225.0..=340.0).contains(&hof),
            "handoffs p99.999 = {hof} (paper: 280)"
        );
        assert!(
            (410.0..=620.0).contains(&act),
            "active/BS p99.999 = {act} (paper: 514)"
        );
        assert!(
            (25.0..=45.0).contains(&brs),
            "bearers p99.999 = {brs} (paper: 34)"
        );
    }

    #[test]
    fn typical_station_has_hundreds_of_active_ues() {
        let stats = MetroModel::paper_metro(7).generate();
        let median = stats.active_per_station.median();
        assert!(
            (80.0..=400.0).contains(&median),
            "median active/BS = {median} (paper: 'hundreds')"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = MetroModel::small(9).generate();
        let b = MetroModel::small(9).generate();
        assert_eq!(a.total_arrivals, b.total_arrivals);
        assert_eq!(a.total_handoffs, b.total_handoffs);
        let c = MetroModel::small(10).generate();
        assert_ne!(a.total_arrivals, c.total_arrivals);
    }

    #[test]
    fn diurnal_structure_shows_in_series() {
        // peak-hour arrival counts dominate trough-hour counts
        let m = MetroModel::small(3);
        let stats = m.generate();
        // indirectly: the max per-second rate is well above the median
        let max = stats.ue_arrivals_per_sec.max();
        let med = stats.ue_arrivals_per_sec.median();
        assert!(
            max > med * 1.5,
            "diurnal swing visible (max {max}, median {med})"
        );
    }
}
