//! The replicated state store: the deterministic materialization of the
//! log.
//!
//! Records are totally ordered *per origin* but interleave arbitrarily
//! *across* origins — replica A may apply seat 0's record before seat
//! 1's while replica B applies them the other way around. The store is
//! therefore built so that application order across origins does not
//! matter: every key is a last-writer-wins register with a
//! deterministic merge key, so any two replicas that applied the same
//! *set* of records (each origin's prefix in order) hold byte-identical
//! state. [`ReplicaStore::snapshot_bytes`] is that byte string — the
//! oracle the recovery gate compares across survivors and against the
//! pre-kill leader.
//!
//! Merge keys:
//!
//! * UE registry — `(since, origin)`: a handoff's attach carries a later
//!   timestamp than the attach it supersedes, so the newest location
//!   wins regardless of arrival order. Detach writes a *tombstone*
//!   carrying the removed entry's own key, so a stale attach arriving
//!   late cannot resurrect a detached UE. Per-origin timestamps are
//!   monotone (one controller's clock), which makes the rule total.
//! * Policy paths — `(epoch, origin)`: the same `(bs, clause)` is only
//!   re-installed by a *different* controller after a leadership change,
//!   i.e. in a later epoch, so the newest leadership's path wins.
//!
//! The store holds the §5.2 "slow-changing, strongly consistent" slice
//! of controller state: the UE registry (IMSI → location + permanent IP)
//! and installed policy paths. Fast-moving microflow state stays at the
//! agents and is rebuilt by `resync`, exactly as the paper prescribes.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use softcell_policy::clause::ClauseId;
use softcell_types::{
    BaseStationId, ControllerId, Error, PolicyTag, PortNo, Result, SimTime, UeId, UeImsi,
};

use crate::log::{Cursor, LogRecord, ReplicatedOp};

/// An attached UE's replicated registry entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UeEntry {
    /// Current base station.
    pub bs: BaseStationId,
    /// Local UE id at that base station.
    pub ue_id: UeId,
    /// Leader-assigned permanent address; survives handoffs.
    pub permanent_ip: Ipv4Addr,
}

/// One IMSI's last-writer-wins register: the merge key of the winning
/// write plus the entry it established (`None` = detach tombstone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UeSlot {
    /// Timestamp of the winning write (attach time; a detach carries
    /// the `since` of the entry it removed).
    pub since: SimTime,
    /// Origin of the winning write (merge tiebreak).
    pub origin: ControllerId,
    /// The live entry, or `None` for a tombstone.
    pub entry: Option<UeEntry>,
}

/// An installed policy path's replicated entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathEntry {
    /// The tag realizing the path.
    pub tag: PolicyTag,
    /// Access-switch output port of the first hop.
    pub port: PortNo,
    /// Epoch of the installing leadership (merge key, with `origin`).
    pub epoch: u64,
    /// The installing controller (merge tiebreak).
    pub origin: ControllerId,
}

/// Deterministic replicated state, materialized from log records.
///
/// All maps are `BTreeMap` so iteration — and therefore
/// [`snapshot_bytes`](Self::snapshot_bytes) — is key-ordered and
/// identical on every replica holding the same state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStore {
    ues: BTreeMap<UeImsi, UeSlot>,
    paths: BTreeMap<(BaseStationId, ClauseId), PathEntry>,
    /// Per-origin applied watermark: highest index applied from each seat.
    applied: BTreeMap<ControllerId, u64>,
}

const SNAPSHOT_VERSION: u8 = 1;

impl ReplicaStore {
    /// An empty store (watermark 0 for every origin).
    pub fn new() -> ReplicaStore {
        ReplicaStore::default()
    }

    /// Highest index applied from `origin` (0 if none).
    pub fn applied(&self, origin: ControllerId) -> u64 {
        self.applied.get(&origin).copied().unwrap_or(0)
    }

    /// The live registry entry for `imsi` (tombstones excluded).
    pub fn ue(&self, imsi: UeImsi) -> Option<&UeEntry> {
        self.ues.get(&imsi).and_then(|s| s.entry.as_ref())
    }

    /// The full LWW slot for `imsi`, tombstones included.
    pub fn ue_slot(&self, imsi: UeImsi) -> Option<&UeSlot> {
        self.ues.get(&imsi)
    }

    /// The installed path for `(bs, clause)`, if any.
    pub fn path(&self, bs: BaseStationId, clause: ClauseId) -> Option<&PathEntry> {
        self.paths.get(&(bs, clause))
    }

    /// Number of *attached* UEs (tombstones excluded).
    pub fn ue_count(&self) -> usize {
        self.ues.values().filter(|s| s.entry.is_some()).count()
    }

    /// Number of installed paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Iterates attached UEs in IMSI order.
    pub fn ues(&self) -> impl Iterator<Item = (UeImsi, &UeEntry)> {
        self.ues
            .iter()
            .filter_map(|(imsi, s)| s.entry.as_ref().map(|e| (*imsi, e)))
    }

    /// Applies one log record.
    ///
    /// * `Ok(true)` — the record advanced this origin's watermark. (The
    ///   LWW merge may still have kept the existing value; the
    ///   watermark advances either way, identically on every replica.)
    /// * `Ok(false)` — duplicate (index ≤ watermark); state untouched.
    ///   Leader retries after a partial quorum round land here.
    /// * `Err(Range)` — gap (index > watermark + 1); the caller must
    ///   request a snapshot before this record can be applied.
    pub fn apply(&mut self, record: &LogRecord) -> Result<bool> {
        let watermark = self.applied(record.origin);
        if record.index <= watermark {
            return Ok(false);
        }
        if record.index > watermark + 1 {
            return Err(Error::Range(format!(
                "log gap from {}: record index {} but applied watermark {}",
                record.origin, record.index, watermark
            )));
        }
        match record.op {
            ReplicatedOp::Attach {
                imsi,
                bs,
                ue_id,
                since,
                permanent_ip,
            } => {
                self.merge_ue(
                    imsi,
                    UeSlot {
                        since,
                        origin: record.origin,
                        entry: Some(UeEntry {
                            bs,
                            ue_id,
                            permanent_ip,
                        }),
                    },
                );
            }
            ReplicatedOp::Detach { imsi, since } => {
                self.merge_ue(
                    imsi,
                    UeSlot {
                        since,
                        origin: record.origin,
                        entry: None,
                    },
                );
            }
            ReplicatedOp::PathInstall {
                bs,
                clause,
                tag,
                port,
            } => {
                self.merge_path(
                    (bs, clause),
                    PathEntry {
                        tag,
                        port,
                        epoch: record.epoch,
                        origin: record.origin,
                    },
                );
            }
        }
        self.applied.insert(record.origin, record.index);
        Ok(true)
    }

    /// LWW merge: the write with the greater `(since, origin)` key wins;
    /// an equal key (necessarily the same origin, whose records arrive
    /// in index order) means the later write wins. Returns whether the
    /// stored value changed.
    fn merge_ue(&mut self, imsi: UeImsi, incoming: UeSlot) -> bool {
        match self.ues.entry(imsi) {
            Entry::Vacant(v) => {
                v.insert(incoming);
                true
            }
            Entry::Occupied(mut o) => {
                let slot = o.get_mut();
                if (incoming.since, incoming.origin) >= (slot.since, slot.origin)
                    && *slot != incoming
                {
                    *slot = incoming;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// LWW merge for paths: the install from the greater
    /// `(epoch, origin)` leadership wins. Returns whether the stored
    /// value changed.
    fn merge_path(&mut self, key: (BaseStationId, ClauseId), incoming: PathEntry) -> bool {
        match self.paths.entry(key) {
            Entry::Vacant(v) => {
                v.insert(incoming);
                true
            }
            Entry::Occupied(mut o) => {
                let slot = o.get_mut();
                if (incoming.epoch, incoming.origin) >= (slot.epoch, slot.origin)
                    && *slot != incoming
                {
                    *slot = incoming;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Point-wise join of `other` into `self`: every LWW register keeps
    /// its winning write, and each origin's applied watermark becomes
    /// the max of the two sides. Because the store materializes records
    /// order-independently, the join of two stores equals the store that
    /// applied the *union* of their record sets — so merging a snapshot
    /// can never drop a committed record or regress a watermark, no
    /// matter which origins the sender was behind on. Returns whether
    /// `self` changed.
    pub fn merge(&mut self, other: &ReplicaStore) -> bool {
        let mut changed = false;
        for (imsi, slot) in &other.ues {
            changed |= self.merge_ue(*imsi, *slot);
        }
        for (key, entry) in &other.paths {
            changed |= self.merge_path(*key, *entry);
        }
        for (origin, index) in &other.applied {
            let mine = self.applied.entry(*origin).or_insert(0);
            if *index > *mine {
                *mine = *index;
                changed = true;
            }
        }
        changed
    }

    /// Whether `self` has applied records from some origin beyond
    /// `other`'s watermark — i.e. holds state `other` lacks.
    pub fn ahead_of(&self, other: &ReplicaStore) -> bool {
        self.applied
            .iter()
            .any(|(origin, index)| *index > other.applied(*origin))
    }

    /// Serializes the full store deterministically.
    ///
    /// Two replicas holding the same state produce *identical* byte
    /// strings — this is the recovery oracle and the `SnapshotTransfer`
    /// payload.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            13 + self.ues.len() * 31 + self.paths.len() * 22 + self.applied.len() * 12,
        );
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&(self.ues.len() as u32).to_be_bytes());
        for (imsi, s) in &self.ues {
            out.extend_from_slice(&imsi.0.to_be_bytes());
            out.extend_from_slice(&s.since.0.to_be_bytes());
            out.extend_from_slice(&s.origin.0.to_be_bytes());
            match &s.entry {
                Some(e) => {
                    out.push(1);
                    out.extend_from_slice(&e.bs.0.to_be_bytes());
                    out.extend_from_slice(&e.ue_id.0.to_be_bytes());
                    out.extend_from_slice(&u32::from(e.permanent_ip).to_be_bytes());
                }
                None => out.push(0),
            }
        }
        out.extend_from_slice(&(self.paths.len() as u32).to_be_bytes());
        for ((bs, clause), p) in &self.paths {
            out.extend_from_slice(&bs.0.to_be_bytes());
            out.extend_from_slice(&clause.0.to_be_bytes());
            out.extend_from_slice(&p.tag.0.to_be_bytes());
            out.extend_from_slice(&p.port.0.to_be_bytes());
            out.extend_from_slice(&p.epoch.to_be_bytes());
            out.extend_from_slice(&p.origin.0.to_be_bytes());
        }
        out.extend_from_slice(&(self.applied.len() as u32).to_be_bytes());
        for (origin, index) in &self.applied {
            out.extend_from_slice(&origin.0.to_be_bytes());
            out.extend_from_slice(&index.to_be_bytes());
        }
        out
    }

    /// Reconstructs a store from [`snapshot_bytes`](Self::snapshot_bytes)
    /// output. Malformed input is an [`Error::Malformed`], never a panic
    /// — snapshots arrive over the wire from peers.
    pub fn restore(buf: &[u8]) -> Result<ReplicaStore> {
        let mut r = Cursor::new(buf);
        let version = r.take_u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(Error::Malformed(format!(
                "unknown snapshot version {version}"
            )));
        }
        let mut store = ReplicaStore::new();
        let n_ues = r.take_u32()?;
        for _ in 0..n_ues {
            let imsi = UeImsi(r.take_u64()?);
            let since = SimTime(r.take_u64()?);
            let origin = ControllerId(r.take_u32()?);
            let entry = match r.take_u8()? {
                0 => None,
                1 => Some(UeEntry {
                    bs: BaseStationId(r.take_u32()?),
                    ue_id: UeId(r.take_u16()?),
                    permanent_ip: Ipv4Addr::from(r.take_u32()?),
                }),
                other => {
                    return Err(Error::Malformed(format!(
                        "invalid UE slot discriminant {other}"
                    )))
                }
            };
            store.ues.insert(
                imsi,
                UeSlot {
                    since,
                    origin,
                    entry,
                },
            );
        }
        let n_paths = r.take_u32()?;
        for _ in 0..n_paths {
            let key = (BaseStationId(r.take_u32()?), ClauseId(r.take_u16()?));
            let entry = PathEntry {
                tag: PolicyTag(r.take_u16()?),
                port: PortNo(r.take_u16()?),
                epoch: r.take_u64()?,
                origin: ControllerId(r.take_u32()?),
            };
            store.paths.insert(key, entry);
        }
        let n_applied = r.take_u32()?;
        for _ in 0..n_applied {
            let origin = ControllerId(r.take_u32()?);
            let index = r.take_u64()?;
            store.applied.insert(origin, index);
        }
        r.done()?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attach(origin: u32, index: u64, imsi: u64, bs: u32, since: u64) -> LogRecord {
        LogRecord {
            origin: ControllerId(origin),
            epoch: 1,
            index,
            op: ReplicatedOp::Attach {
                imsi: UeImsi(imsi),
                bs: BaseStationId(bs),
                ue_id: UeId(index as u16),
                since: SimTime(since),
                permanent_ip: Ipv4Addr::new(100, 64, origin as u8, imsi as u8),
            },
        }
    }

    fn detach(origin: u32, index: u64, imsi: u64, since: u64) -> LogRecord {
        LogRecord {
            origin: ControllerId(origin),
            epoch: 1,
            index,
            op: ReplicatedOp::Detach {
                imsi: UeImsi(imsi),
                since: SimTime(since),
            },
        }
    }

    fn path(origin: u32, index: u64, epoch: u64, bs: u32, clause: u16, tag: u16) -> LogRecord {
        LogRecord {
            origin: ControllerId(origin),
            epoch,
            index,
            op: ReplicatedOp::PathInstall {
                bs: BaseStationId(bs),
                clause: ClauseId(clause),
                tag: PolicyTag(tag),
                port: PortNo(2),
            },
        }
    }

    #[test]
    fn apply_tracks_per_origin_watermarks() {
        let mut s = ReplicaStore::new();
        assert!(s.apply(&attach(0, 1, 7, 3, 10)).unwrap());
        assert!(s.apply(&attach(1, 1, 8, 4, 10)).unwrap());
        assert_eq!(s.applied(ControllerId(0)), 1);
        assert_eq!(s.applied(ControllerId(1)), 1);

        // duplicate: ignored, not an error (leader retry path)
        assert!(!s.apply(&attach(0, 1, 7, 3, 10)).unwrap());
        // gap: refused loudly
        assert!(s.apply(&attach(0, 3, 9, 3, 30)).is_err());
        assert_eq!(s.ue_count(), 2);
    }

    #[test]
    fn handoff_is_an_upsert_keeping_permanent_ip() {
        let mut s = ReplicaStore::new();
        s.apply(&attach(0, 1, 7, 3, 10)).unwrap();
        let ip = s.ue(UeImsi(7)).unwrap().permanent_ip;
        // handoff: same origin re-attaches the IMSI at a new station
        let mut hand = attach(0, 2, 7, 5, 50);
        if let ReplicatedOp::Attach { permanent_ip, .. } = &mut hand.op {
            *permanent_ip = ip;
        }
        s.apply(&hand).unwrap();
        let e = s.ue(UeImsi(7)).unwrap();
        assert_eq!(e.bs, BaseStationId(5));
        assert_eq!(e.permanent_ip, ip);
        assert_eq!(s.ue_count(), 1, "upsert, not a second record");

        s.apply(&detach(0, 3, 7, 50)).unwrap();
        assert_eq!(s.ue_count(), 0);
        assert!(s.ue_slot(UeImsi(7)).is_some(), "tombstone retained");
    }

    #[test]
    fn cross_origin_handoff_converges_regardless_of_order() {
        // UE 7 attaches under seat 0 at t=10, hands off to seat 1's
        // region at t=50. Replica A applies 0's record first, replica B
        // applies 1's first — both must land on the same bytes, with
        // the *newer* location winning in both.
        let at0 = attach(0, 1, 7, 3, 10);
        let at1 = attach(1, 1, 7, 9, 50);
        let mut a = ReplicaStore::new();
        a.apply(&at0).unwrap();
        a.apply(&at1).unwrap();
        let mut b = ReplicaStore::new();
        b.apply(&at1).unwrap();
        b.apply(&at0).unwrap();
        assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
        assert_eq!(a.ue(UeImsi(7)).unwrap().bs, BaseStationId(9));
    }

    #[test]
    fn tombstone_blocks_stale_attach_resurrection() {
        // Seat 1 handed the UE off (attach t=50) and later detached it;
        // seat 0's original attach (t=10) straggles in afterwards. The
        // tombstone's key (50, seat 1) beats the stale attach, so the
        // UE stays detached — no ghost divergence.
        let mut s = ReplicaStore::new();
        s.apply(&attach(1, 1, 7, 9, 50)).unwrap();
        s.apply(&detach(1, 2, 7, 50)).unwrap();
        s.apply(&attach(0, 1, 7, 3, 10)).unwrap();
        assert_eq!(s.ue_count(), 0, "stale attach must not resurrect");
        // ...but a genuinely newer re-attach wins over the tombstone
        s.apply(&attach(0, 2, 7, 3, 80)).unwrap();
        assert_eq!(s.ue(UeImsi(7)).unwrap().bs, BaseStationId(3));
    }

    #[test]
    fn path_reinstall_after_leadership_change_wins_by_epoch() {
        // Old leader (seat 0, epoch 1) installed the path; after
        // fail-over the new leader (seat 1, epoch 2) re-installs it
        // with its own tag. Whichever order a replica sees them in,
        // the epoch-2 entry wins.
        let old = path(0, 1, 1, 3, 0, 5);
        let new = path(1, 1, 2, 3, 0, 261);
        let mut a = ReplicaStore::new();
        a.apply(&old).unwrap();
        a.apply(&new).unwrap();
        let mut b = ReplicaStore::new();
        b.apply(&new).unwrap();
        b.apply(&old).unwrap();
        assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
        assert_eq!(
            a.path(BaseStationId(3), ClauseId(0)).unwrap().tag,
            PolicyTag(261)
        );
    }

    #[test]
    fn merge_is_the_union_of_record_sets() {
        // Store A applied seat 0's records, store B applied seat 1's;
        // merging either way must equal the store that applied both —
        // nothing lost, no watermark regressed.
        let mut a = ReplicaStore::new();
        a.apply(&attach(0, 1, 7, 3, 10)).unwrap();
        a.apply(&path(0, 2, 1, 3, 0, 5)).unwrap();
        let mut b = ReplicaStore::new();
        b.apply(&attach(1, 1, 8, 9, 20)).unwrap();
        b.apply(&detach(1, 2, 8, 20)).unwrap();

        let mut oracle = ReplicaStore::new();
        for r in [
            attach(0, 1, 7, 3, 10),
            path(0, 2, 1, 3, 0, 5),
            attach(1, 1, 8, 9, 20),
            detach(1, 2, 8, 20),
        ] {
            oracle.apply(&r).unwrap();
        }

        let mut ab = a.clone();
        assert!(ab.merge(&b));
        let mut ba = b.clone();
        assert!(ba.merge(&a));
        assert_eq!(ab.snapshot_bytes(), oracle.snapshot_bytes());
        assert_eq!(ba.snapshot_bytes(), oracle.snapshot_bytes());
        assert_eq!(ab.applied(ControllerId(0)), 2);
        assert_eq!(ab.applied(ControllerId(1)), 2);

        // Merging a behind-store into an ahead-store changes nothing.
        let mut again = ab.clone();
        assert!(!again.merge(&a));
        assert_eq!(again.snapshot_bytes(), ab.snapshot_bytes());
    }

    #[test]
    fn merge_never_regresses_third_party_state() {
        // The high-severity review scenario: C applied a record from
        // origin 1 that A never saw. A's snapshot, merged at C, must
        // keep origin 1's record and watermark.
        let mut c = ReplicaStore::new();
        c.apply(&attach(0, 1, 7, 3, 10)).unwrap();
        c.apply(&attach(1, 1, 8, 9, 20)).unwrap();
        let mut a = ReplicaStore::new();
        a.apply(&attach(0, 1, 7, 3, 10)).unwrap();

        assert!(c.ahead_of(&a), "C holds origin 1 state A lacks");
        assert!(!a.ahead_of(&c));
        assert!(!c.merge(&a), "A's subset snapshot changes nothing at C");
        assert_eq!(c.applied(ControllerId(1)), 1, "watermark kept");
        assert!(c.ue(UeImsi(8)).is_some(), "committed record kept");
    }

    #[test]
    fn snapshot_round_trips_byte_for_byte() {
        let mut s = ReplicaStore::new();
        s.apply(&attach(0, 1, 7, 3, 10)).unwrap();
        s.apply(&attach(1, 1, 9, 4, 20)).unwrap();
        s.apply(&detach(1, 2, 9, 20)).unwrap();
        s.apply(&path(1, 3, 1, 4, 0, 256)).unwrap();
        let bytes = s.snapshot_bytes();
        let restored = ReplicaStore::restore(&bytes).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.snapshot_bytes(), bytes);
    }

    #[test]
    fn malformed_snapshots_are_rejected_not_panicking() {
        let mut s = ReplicaStore::new();
        s.apply(&attach(0, 1, 7, 3, 10)).unwrap();
        s.apply(&detach(0, 2, 7, 10)).unwrap();
        s.apply(&path(0, 3, 1, 3, 0, 1)).unwrap();
        let bytes = s.snapshot_bytes();
        for cut in 0..bytes.len() {
            assert!(ReplicaStore::restore(&bytes[..cut]).is_err());
        }
        let mut long = bytes.clone();
        long.push(9);
        assert!(ReplicaStore::restore(&long).is_err());
        let mut bad = bytes;
        bad[0] = 99; // unknown version
        assert!(ReplicaStore::restore(&bad).is_err());
    }
}
