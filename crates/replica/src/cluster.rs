//! Multi-controller cluster harness: killable links, fail-over, and
//! agent re-homing.
//!
//! [`Cluster`] wires N [`ReplicaNode`]s into a full mesh of in-process
//! loopback links wrapped in [`Killable`]: every link watches the
//! *kill switch* of both endpoint nodes, so flipping one node's switch
//! severs all its links at once — the in-process equivalent of
//! `kill -9`, with no goodbye frames and no graceful teardown. The dead
//! node's `Arc` state is frozen, which is exactly what the recovery
//! test wants: a readable pre-kill oracle.
//!
//! Links can also be *cut* (partitioned): sends fail and delivery
//! stops, but the serve loops stay alive, so healing the cut restores
//! the link. Cuts are how the fencing test isolates a leader without
//! destroying it — the paper-level scenario of a controller that is
//! alive but on the wrong side of a partition.
//!
//! Fail-over ([`Cluster::fail_over`]) is deliberately deterministic:
//! the initiating survivor advances the membership ring (epoch + 1),
//! broadcasts the view, then exchanges store images — pushed snapshots
//! merge point-wise and a receiver holding records the sender lacks
//! hands its merged image back — so all survivors converge
//! byte-for-byte on the *union* of what they applied, even if the dead
//! leader's final records reached only some of them and the initiator
//! missed records others committed. Agents detect leader death by probe
//! failure and re-home ([`rehome_agent`]) to the deterministic
//! successor (`Membership::leader_of_station`), replaying their state
//! through the controller-side `resync` upsert machinery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use softcell_controller::agent::LocalAgent;
use softcell_controller::wire::ChannelController;
use softcell_ctlchan::{loopback_pair, ChannelCounters, Loopback, Transport};
use softcell_policy::{AppClassifier, ServicePolicy, SubscriberAttributes};
use softcell_telemetry::Registry;
use softcell_types::{BaseStationId, ControllerId, Error, Membership, Result, SimTime};

use crate::node::{ReplicaConfig, ReplicaNode};

/// How often a blocked [`Killable`] recv re-checks its kill and cut
/// flags.
const POLL: Duration = Duration::from_millis(10);

/// A transport wrapper that models `kill -9` and network partitions.
///
/// * **Kill** (any watched kill switch set): sends fail, recv reports a
///   clean close (`Ok(None)`) so serve loops exit. Permanent.
/// * **Cut** (any watched cut flag set): sends fail and delivery
///   pauses, but recv keeps polling — clearing the flag restores the
///   link with its serve loop intact. Recoverable.
pub struct Killable<T: Transport> {
    inner: T,
    kills: Vec<Arc<AtomicBool>>,
    cuts: Vec<Arc<AtomicBool>>,
    user_deadline: Option<Duration>,
}

impl<T: Transport> Killable<T> {
    /// Wraps `inner`, watching the given kill switches and cut flags.
    pub fn new(inner: T, kills: Vec<Arc<AtomicBool>>, cuts: Vec<Arc<AtomicBool>>) -> Killable<T> {
        Killable {
            inner,
            kills,
            cuts,
            user_deadline: None,
        }
    }

    fn killed(&self) -> bool {
        // Acquire pairs with the Release store in Cluster::kill: state
        // written before the kill is visible to whoever observes it.
        self.kills.iter().any(|k| k.load(Ordering::Acquire))
    }

    fn cut(&self) -> bool {
        self.cuts.iter().any(|c| c.load(Ordering::Acquire))
    }
}

impl<T: Transport> Transport for Killable<T> {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        if self.killed() {
            return Err(Error::InvalidState("link endpoint killed".into()));
        }
        if self.cut() {
            return Err(Error::Timeout("link partitioned".into()));
        }
        self.inner.send(frame)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        let started = Instant::now();
        loop {
            if self.killed() {
                // kill -9: the connection just ends; serve loops exit
                // cleanly with no goodbye traffic
                return Ok(None);
            }
            let budget = match self.user_deadline {
                Some(d) => {
                    let remaining = d.saturating_sub(started.elapsed());
                    if remaining.is_zero() {
                        return Err(Error::Timeout("deadline elapsed on killable link".into()));
                    }
                    remaining.min(POLL)
                }
                None => POLL,
            };
            if self.cut() {
                // partitioned: nothing is delivered, but the loop (and
                // with it the peer's serve thread) stays alive
                std::thread::sleep(budget);
                continue;
            }
            self.inner.set_deadline(Some(budget))?;
            match self.inner.recv() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_timeout() => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn counters(&self) -> Arc<ChannelCounters> {
        self.inner.counters()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.user_deadline = deadline;
        Ok(())
    }
}

/// The link type every cluster connection uses.
pub type Link = Killable<Loopback>;

/// An N-controller cluster over an in-process full mesh.
pub struct Cluster {
    nodes: Vec<Arc<ReplicaNode<Link>>>,
    kills: Vec<Arc<AtomicBool>>,
    cuts: Vec<Arc<AtomicBool>>,
    threads: Mutex<Vec<JoinHandle<Result<()>>>>,
}

impl Cluster {
    /// Starts `n` controllers with the given commit quorum. Every node
    /// gets the same policy and subscriber registry; regions partition
    /// base stations across the seats via the membership ring.
    pub fn start(
        n: usize,
        quorum: usize,
        policy: &ServicePolicy,
        subscribers: &[SubscriberAttributes],
        peer_deadline: Duration,
    ) -> Result<Cluster> {
        let membership = Membership::bootstrap(n)?;
        let kills: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let cuts: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let subs: HashMap<_, _> = subscribers.iter().map(|s| (s.imsi, *s)).collect();

        // Build every directed link client-end first so nodes can be
        // created with their full peer vectors, keeping the server ends
        // for serve threads spawned after.
        let mut client_ends: Vec<Vec<Option<Link>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut server_ends: Vec<(usize, Link)> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (a, b) = loopback_pair();
                let watch_kills = vec![Arc::clone(&kills[i]), Arc::clone(&kills[j])];
                let watch_cuts = vec![Arc::clone(&cuts[i]), Arc::clone(&cuts[j])];
                client_ends[i][j] = Some(Killable::new(a, watch_kills.clone(), watch_cuts.clone()));
                server_ends.push((j, Killable::new(b, watch_kills, watch_cuts)));
            }
        }

        let mut nodes = Vec::with_capacity(n);
        for (i, ends) in client_ends.into_iter().enumerate() {
            let peers = ends
                .into_iter()
                .map(|t| t.map(softcell_ctlchan::CtlChannel::new))
                .collect();
            let cfg = ReplicaConfig {
                id: ControllerId(i as u32),
                quorum,
                peer_deadline,
                policy: policy.clone(),
                apps: AppClassifier::default(),
                subscribers: subs.clone(),
            };
            nodes.push(ReplicaNode::new(cfg, membership.clone(), peers)?);
        }

        let mut threads = Vec::with_capacity(server_ends.len());
        for (owner, transport) in server_ends {
            threads.push(nodes[owner].serve_peer(transport));
        }
        Ok(Cluster {
            nodes,
            kills,
            cuts,
            threads: Mutex::new(threads),
        })
    }

    /// The node at `seat`.
    pub fn node(&self, seat: usize) -> &Arc<ReplicaNode<Link>> {
        &self.nodes[seat]
    }

    /// Number of seats.
    pub fn seats(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `seat` has been killed.
    pub fn is_killed(&self, seat: usize) -> bool {
        self.kills[seat].load(Ordering::Acquire)
    }

    /// `kill -9` for `seat`: every link touching it dies instantly, no
    /// goodbye frames, no teardown. The node's in-memory state freezes
    /// — read it through the `Arc` as the pre-kill oracle.
    pub fn kill(&self, seat: usize) {
        // Release pairs with Killable::killed's Acquire load.
        self.kills[seat].store(true, Ordering::Release);
        Registry::global()
            .journal()
            .record("controller_killed", seat as u64, 0);
    }

    /// Partitions `seat`: all its links stop carrying traffic but stay
    /// alive. Recoverable with [`heal`](Self::heal).
    pub fn cut(&self, seat: usize) {
        self.cuts[seat].store(true, Ordering::Release);
    }

    /// Heals a [`cut`](Self::cut) partition.
    pub fn heal(&self, seat: usize) {
        self.cuts[seat].store(false, Ordering::Release);
    }

    /// The current membership view, read from the first live seat.
    pub fn membership(&self) -> Result<Membership> {
        let seat = self
            .first_live()
            .ok_or_else(|| Error::InvalidState("no live seat".into()))?;
        Ok(self.nodes[seat].membership())
    }

    fn first_live(&self) -> Option<usize> {
        (0..self.nodes.len()).find(|&s| !self.is_killed(s))
    }

    /// Declares `dead` seats down and drives the deterministic
    /// fail-over: the first live survivor advances the ring, broadcasts
    /// the epoch change, and pushes its store image so every survivor
    /// converges. Returns the new view. Duration lands in the
    /// `softcell_replica_recovery_time_us` histogram.
    pub fn fail_over(&self, dead: &[ControllerId]) -> Result<Membership> {
        let initiator = self
            .first_live()
            .ok_or_else(|| Error::InvalidState("no live seat to run fail-over".into()))?;
        self.fail_over_from(initiator, dead)
    }

    /// [`fail_over`](Self::fail_over) with an explicit initiating seat.
    /// Partition tests need this: a cut seat is alive (not killed), so
    /// `first_live` would pick the isolated leader itself — the
    /// fail-over must instead run on the majority side of the cut.
    pub fn fail_over_from(&self, initiator: usize, dead: &[ControllerId]) -> Result<Membership> {
        let started = Instant::now();
        if self.is_killed(initiator) {
            return Err(Error::InvalidState(format!(
                "initiator seat {initiator} is dead"
            )));
        }
        let node = &self.nodes[initiator];
        let view = node.membership().advance(dead)?;
        node.adopt_membership(view.clone());
        node.broadcast_epoch_change()?;
        node.push_snapshot()?;
        let reg = Registry::global();
        reg.histogram("softcell_replica_recovery_time_us")
            .record(started.elapsed().as_micros() as u64);
        reg.journal()
            .record("fail_over", view.epoch(), initiator as u64);
        Ok(view)
    }

    /// Opens an agent-facing transport to `seat`, spawning the serve
    /// thread on the controller side. The link dies with the
    /// controller.
    pub fn agent_transport(&self, seat: usize) -> Result<Link> {
        if self.is_killed(seat) {
            return Err(Error::InvalidState(format!("seat {seat} is dead")));
        }
        let (a, b) = loopback_pair();
        let watch_kills = vec![Arc::clone(&self.kills[seat])];
        let watch_cuts = vec![Arc::clone(&self.cuts[seat])];
        let server = Killable::new(b, watch_kills.clone(), watch_cuts.clone());
        self.threads
            .lock()
            .push(self.nodes[seat].serve_agent(server));
        Ok(Killable::new(a, watch_kills, watch_cuts))
    }

    /// Connects an agent proxy for `bs` to the seat currently leading
    /// its region.
    pub fn connect_agent(&self, bs: BaseStationId) -> Result<ChannelController<Link>> {
        let leader = self
            .membership()?
            .leader_of_station(bs)
            .ok_or_else(|| Error::InvalidState("no live leader".into()))?;
        ChannelController::connect(self.agent_transport(leader.seat())?, bs)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for k in &self.kills {
            k.store(true, Ordering::Release);
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// Re-homes an agent whose controller died: looks up the deterministic
/// successor for its station in the (post-fail-over) membership view,
/// reconnects there, and replays the agent's state with `resync` — the
/// controller upserts every UE, so permanent IPs survive and a UE that
/// handed off across the controller boundary lands exactly once.
/// Returns the new leader's seat.
pub fn rehome_agent(
    cluster: &Cluster,
    ctl: &mut ChannelController<Link>,
    agent: &mut LocalAgent,
    now: SimTime,
) -> Result<ControllerId> {
    let bs = ctl.base_station();
    let leader = cluster
        .membership()?
        .leader_of_station(bs)
        .ok_or_else(|| Error::InvalidState("no live leader to re-home to".into()))?;
    ctl.reconnect(cluster.agent_transport(leader.seat())?)?;
    ctl.resync(agent, now)?;
    let reg = Registry::global();
    reg.counter("softcell_replica_rehomes_total").inc();
    reg.journal()
        .record("rehome", u64::from(bs.0), u64::from(leader.0));
    Ok(leader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ReplicatedOp;
    use crate::store::ReplicaStore;
    use softcell_ctlchan::{Message, PacketIn};
    use softcell_policy::clause::ClauseId;
    use softcell_types::{AddressingScheme, PolicyTag, PortEmbedding, PortNo, UeId, UeImsi};
    use std::net::Ipv4Addr;

    fn subs(n: u64) -> Vec<SubscriberAttributes> {
        (0..n)
            .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
            .collect()
    }

    fn cluster(n: usize, quorum: usize) -> Cluster {
        Cluster::start(
            n,
            quorum,
            &ServicePolicy::example_carrier_a(1),
            &subs(16),
            Duration::from_millis(400),
        )
        .unwrap()
    }

    fn attach_op(imsi: u64, bs: u32, since: u64) -> ReplicatedOp {
        ReplicatedOp::Attach {
            imsi: UeImsi(imsi),
            bs: BaseStationId(bs),
            ue_id: UeId(1),
            since: SimTime(since),
            permanent_ip: Ipv4Addr::new(100, 64, 0, imsi as u8),
        }
    }

    fn agent_for(bs: BaseStationId) -> LocalAgent {
        LocalAgent::new(
            bs,
            PortNo(2),
            AddressingScheme::default_scheme(),
            PortEmbedding::default_embedding(),
        )
    }

    /// A station whose region `seat` leads under the bootstrap view.
    fn station_led_by(view: &Membership, seat: u32) -> BaseStationId {
        (0..1024u32)
            .map(BaseStationId)
            .find(|bs| view.leader_of_station(*bs) == Some(ControllerId(seat)))
            .expect("every seat leads some station")
    }

    #[test]
    fn quorum_commit_applies_on_all_replicas() {
        let c = cluster(3, 2);
        let index = c.node(0).propose(attach_op(1, 0, 5)).unwrap();
        assert_eq!(index, 1);
        for seat in 0..3 {
            assert_eq!(c.node(seat).applied(ControllerId(0)), 1, "seat {seat}");
            assert!(c.node(seat).store_ue(UeImsi(1)).is_some());
        }
        let oracle = c.node(0).snapshot_bytes();
        assert_eq!(c.node(1).snapshot_bytes(), oracle);
        assert_eq!(c.node(2).snapshot_bytes(), oracle);
        assert_eq!(c.node(0).commit_index(), 1);
    }

    #[test]
    fn fenced_stale_leader_cannot_commit_or_release_flowmods() {
        let c = cluster(3, 2);
        c.node(0).propose(attach_op(1, 0, 5)).unwrap();

        // Partition seat 0 (alive, but unreachable) and fail it over.
        c.cut(0);
        let view = c.fail_over_from(1, &[ControllerId(0)]).unwrap();
        assert_eq!(view.epoch(), 2);
        assert!(!view.is_live(ControllerId(0)));

        // The partition heals; seat 0 still believes in epoch 1 and
        // tries to lead.
        c.heal(0);
        let reg = Registry::global();
        let rejections = reg.counter("softcell_replica_stale_epoch_rejections_total");
        let before = rejections.get();
        let err = c.node(0).propose(attach_op(2, 0, 9)).unwrap_err();
        assert!(
            err.to_string().contains("fenced"),
            "stale proposal must be fenced, got: {err}"
        );
        // The survivors rejected the record without applying it...
        assert!(rejections.get() > before);
        assert_eq!(c.node(1).applied(ControllerId(0)), 1);
        assert_eq!(c.node(2).applied(ControllerId(0)), 1);
        // ...and the rejection taught seat 0 the newer epoch.
        assert_eq!(c.node(0).current_epoch(), 2);
        assert_eq!(c.node(0).commit_index(), 1, "nothing new committed");

        // The agent-facing path is equally dead: a path request on the
        // stale leader yields an error, never a FlowMod — commit-gated
        // release means a fenced leader cannot program the network.
        let bs = station_led_by(&c.node(0).membership(), 0);
        let reply = c
            .node(0)
            .handle_agent(&Message::PacketIn(PacketIn::PathRequest {
                bs,
                clause: ClauseId(0),
            }))
            .unwrap();
        assert!(
            reply.as_error().is_some(),
            "fenced leader must not emit a flow-mod, got {reply:?}"
        );

        // A second attempt is refused by the local fence alone (no
        // network round needed once the fence is raised).
        let err2 = c.node(0).propose(attach_op(3, 0, 11)).unwrap_err();
        assert!(err2.to_string().contains("fenced"));
    }

    #[test]
    fn gap_heals_via_snapshot_transfer() {
        let c = cluster(3, 2);
        // Seat 2 misses two committed records while partitioned.
        c.cut(2);
        c.node(0).propose(attach_op(1, 0, 5)).unwrap();
        c.node(0).propose(attach_op(2, 3, 6)).unwrap();
        assert_eq!(c.node(2).applied(ControllerId(0)), 0, "partitioned");
        c.heal(2);

        let reg = Registry::global();
        let snapshots = reg.counter("softcell_replica_snapshots_total");
        let before = snapshots.get();
        // The next proposal gap-rejects at seat 2, which triggers a
        // snapshot transfer followed by a re-ship of the record.
        c.node(0).propose(attach_op(3, 6, 7)).unwrap();
        assert!(snapshots.get() > before, "snapshot catch-up must run");
        assert_eq!(c.node(2).applied(ControllerId(0)), 3, "fully caught up");
        let oracle = c.node(0).snapshot_bytes();
        assert_eq!(c.node(1).snapshot_bytes(), oracle);
        assert_eq!(c.node(2).snapshot_bytes(), oracle);
    }

    #[test]
    fn agent_attach_and_path_commit_before_reply() {
        let c = cluster(3, 2);
        let view = c.membership().unwrap();
        let bs = station_led_by(&view, 1);
        let mut ctl = c.connect_agent(bs).unwrap();
        let mut agent = agent_for(bs);

        let rec = agent
            .handle_attach(UeImsi(4), &mut ctl, SimTime(10))
            .unwrap();
        // By the time the agent holds its grant, the attach is on every
        // replica (reply release is commit-gated).
        for seat in 0..3 {
            let e = c.node(seat).store_ue(UeImsi(4)).expect("replicated");
            assert_eq!(e.bs, bs);
            assert_eq!(e.permanent_ip, rec.permanent_ip, "seat {seat}");
        }

        // A path request commits the install and yields a slab tag of
        // the leading seat (seat 1 → tags 256..).
        let reply = c
            .node(1)
            .handle_agent(&Message::PacketIn(PacketIn::PathRequest {
                bs,
                clause: ClauseId(0),
            }))
            .unwrap();
        let Message::FlowMod(mods) = &reply else {
            panic!("expected FlowMod, got {reply:?}");
        };
        let tag = mods[0].tags.uplink_entry;
        assert_eq!(tag.0 / 256, 1, "tag from seat 1's slab");
        for seat in 0..3 {
            let p = c.node(seat).applied(ControllerId(1));
            assert!(p >= 2, "path install replicated to seat {seat}");
        }
        // Re-requesting the same path reuses the committed tag.
        let again = c
            .node(1)
            .handle_agent(&Message::PacketIn(PacketIn::PathRequest {
                bs,
                clause: ClauseId(0),
            }))
            .unwrap();
        let Message::FlowMod(mods2) = &again else {
            panic!("expected FlowMod");
        };
        assert_eq!(mods2[0].tags.uplink_entry, tag);

        // Detach replicates too, leaving a tombstone everywhere.
        agent.handle_detach(UeImsi(4), &mut ctl).unwrap();
        for seat in 0..3 {
            assert!(c.node(seat).store_ue(UeImsi(4)).is_none(), "seat {seat}");
        }
    }

    #[test]
    fn agent_rehomes_to_deterministic_successor_after_kill() {
        let c = cluster(3, 2);
        let view = c.membership().unwrap();
        let bs = station_led_by(&view, 0);
        let successor = {
            let after = view.advance(&[ControllerId(0)]).unwrap();
            after.leader_of_station(bs).unwrap()
        };
        let mut ctl = c.connect_agent(bs).unwrap();
        let mut agent = agent_for(bs);
        let r5 = agent
            .handle_attach(UeImsi(5), &mut ctl, SimTime(10))
            .unwrap();
        let r6 = agent
            .handle_attach(UeImsi(6), &mut ctl, SimTime(11))
            .unwrap();

        // kill -9 the region leader; the agent notices via probe.
        c.kill(0);
        assert!(
            ctl.channel().probe(Duration::from_millis(100)).is_err(),
            "probe must fail against a dead controller"
        );
        c.fail_over(&[ControllerId(0)]).unwrap();

        let reg = Registry::global();
        let rehomes = reg.counter("softcell_replica_rehomes_total");
        let before = rehomes.get();
        let new_home = rehome_agent(&c, &mut ctl, &mut agent, SimTime(20)).unwrap();
        assert_eq!(new_home, successor, "re-home is deterministic");
        assert!(rehomes.get() > before);

        // The resync re-attach upserted: same permanent IPs, new
        // records on the survivors, byte-identical stores.
        for seat in [1usize, 2] {
            let e5 = c.node(seat).store_ue(UeImsi(5)).expect("ue5 survives");
            let e6 = c.node(seat).store_ue(UeImsi(6)).expect("ue6 survives");
            assert_eq!(e5.permanent_ip, r5.permanent_ip);
            assert_eq!(e6.permanent_ip, r6.permanent_ip);
        }
        assert_eq!(
            c.node(1).snapshot_bytes(),
            c.node(2).snapshot_bytes(),
            "survivors converge byte-for-byte"
        );
        // And the agent can keep working against the new home.
        agent
            .handle_attach(UeImsi(7), &mut ctl, SimTime(21))
            .unwrap();
        assert!(c.node(successor.seat()).store_ue(UeImsi(7)).is_some());
    }

    #[test]
    fn snapshot_push_merges_instead_of_erasing_third_party_records() {
        let c = cluster(3, 2);
        // Seat 0 is partitioned while seat 1 commits a record on {1, 2}.
        c.cut(0);
        c.node(1).propose(attach_op(1, 4, 5)).unwrap();
        assert_eq!(c.node(0).applied(ControllerId(1)), 0, "partitioned");
        assert_eq!(c.node(2).applied(ControllerId(1)), 1);
        c.heal(0);

        // Seat 1 dies; seat 0 — which never saw the record — initiates
        // the fail-over and pushes its snapshot to seat 2. The merge
        // must keep seat 2's copy of the committed, agent-acknowledged
        // record (wholesale adoption used to erase it, leaving it on
        // zero live replicas) and hand it back to seat 0 so both
        // survivors converge on the union.
        c.kill(1);
        c.fail_over(&[ControllerId(1)]).unwrap();
        for seat in [0usize, 2] {
            assert_eq!(
                c.node(seat).applied(ControllerId(1)),
                1,
                "seat {seat} must keep origin 1's watermark"
            );
            assert!(
                c.node(seat).store_ue(UeImsi(1)).is_some(),
                "seat {seat} must keep the committed record"
            );
        }
        assert_eq!(
            c.node(0).snapshot_bytes(),
            c.node(2).snapshot_bytes(),
            "survivors converge on the union"
        );
    }

    #[test]
    fn pending_reship_keeps_original_epoch_stamp() {
        // Quorum 3: one cut peer makes every proposal miss quorum.
        let c = cluster(3, 3);
        c.cut(2);
        let op = ReplicatedOp::PathInstall {
            bs: BaseStationId(3),
            clause: ClauseId(0),
            tag: PolicyTag(5),
            port: PortNo(1),
        };
        c.node(0).propose(op).unwrap_err();
        // Seat 1 applied the epoch-1 copy; seat 2 never saw it.
        assert_eq!(c.node(1).applied(ControllerId(0)), 1);
        assert_eq!(c.node(2).applied(ControllerId(0)), 0);

        // The proposer survives an epoch change, then flushes the stuck
        // record. The re-ship must carry the *original* epoch in the
        // record (only the frame-level fence epoch is current): seat 1
        // dedups the first copy, seat 2 first sees the re-ship — both
        // must materialize the same PathEntry or stores diverge.
        c.heal(2);
        let bumped = c.node(0).membership().advance(&[]).unwrap();
        c.node(0).adopt_membership(bumped);
        c.node(0).broadcast_epoch_change().unwrap();
        c.node(0).propose(attach_op(1, 0, 9)).unwrap();

        let oracle = c.node(0).snapshot_bytes();
        for seat in 1..3 {
            assert_eq!(
                c.node(seat).snapshot_bytes(),
                oracle,
                "seat {seat} diverged after the re-ship"
            );
        }
        let store = ReplicaStore::restore(&oracle).unwrap();
        let entry = store.path(BaseStationId(3), ClauseId(0)).unwrap();
        assert_eq!(entry.epoch, 1, "record keeps its proposal-time epoch");
    }

    #[test]
    fn failed_proposals_return_slab_allocations() {
        let c = cluster(3, 3);
        let view = c.membership().unwrap();
        let bs = station_led_by(&view, 0);
        c.cut(2);
        let attach = |imsi: u64, at: u64| {
            c.node(0)
                .handle_agent(&Message::PacketIn(PacketIn::Attach {
                    imsi: UeImsi(imsi),
                    bs,
                    ue_id: UeId(1),
                    now: SimTime(at),
                }))
                .unwrap()
        };
        // IMSI 1 takes slab slot 1 and misses quorum: its record stays
        // pending and rightly keeps the slot.
        assert!(attach(1, 5).as_error().is_some());
        // IMSI 2 takes slot 2, but the stuck flush fails before any
        // record for it exists — the slot must be returned, not burned
        // once per retry until the slab runs dry.
        assert!(attach(2, 6).as_error().is_some());
        assert!(attach(2, 7).as_error().is_some());

        c.heal(2);
        // The flush commits IMSI 1 under slot 1; IMSI 2 then gets
        // slot 2 — with the leak it would be slot 4 by now.
        let reply = attach(2, 8);
        let Message::ClassifierReply { record, .. } = reply else {
            panic!("expected ClassifierReply, got {reply:?}");
        };
        assert_eq!(record.permanent_ip, Ipv4Addr::new(100, 64, 0, 2));
        assert_eq!(
            c.node(0).store_ue(UeImsi(1)).unwrap().permanent_ip,
            Ipv4Addr::new(100, 64, 0, 1)
        );
    }

    #[test]
    fn epoch_broadcast_fences_on_strictly_newer_peer_view() {
        let c = cluster(3, 2);
        let v1 = c.membership().unwrap();
        // Seat 1 already holds epoch 3 (say, a faster fail-over).
        let v3 = v1.advance(&[]).unwrap().advance(&[]).unwrap();
        c.node(1).adopt_membership(v3);
        // Seat 0 broadcasts epoch 2. The strictly newer reply is a
        // fencing signal, not an adoption: the broadcast must fail and
        // seat 0 must adopt the newer view instead of proceeding with
        // a fail-over under the stale one.
        let v2 = v1.advance(&[]).unwrap();
        c.node(0).adopt_membership(v2);
        let err = c.node(0).broadcast_epoch_change().unwrap_err();
        assert!(err.to_string().contains("fenced"), "got: {err}");
        assert_eq!(c.node(0).current_epoch(), 3, "fence raised to 3");
        assert_eq!(c.node(0).membership().epoch(), 3, "newer view adopted");
    }

    #[test]
    fn record_from_newer_epoch_with_revived_origin_is_accepted() {
        let c = cluster(3, 2);
        // Seats 1 and 2 hold the epoch-2 view that declares seat 0
        // dead; seat 0 (cut off from that broadcast) never saw it.
        let v1 = c.membership().unwrap();
        let v2 = v1.advance(&[ControllerId(0)]).unwrap();
        c.node(1).adopt_membership(v2);
        c.node(1).broadcast_epoch_change().unwrap();
        assert_eq!(c.node(2).membership().epoch(), 2);
        assert_eq!(c.node(0).membership().epoch(), 1, "seat 0 skipped");

        // Epoch 3 revives seat 0; only seat 0 has seen it so far (its
        // broadcast is still in flight). Its proposal reaches receivers
        // whose *stale* view declares the origin dead — liveness under
        // that view must not reject a record from a newer epoch.
        let v3 = Membership::from_parts(3, vec![true, true, true]).unwrap();
        c.node(0).adopt_membership(v3);
        c.node(0).propose(attach_op(1, 0, 5)).unwrap();
        for seat in 1..3 {
            assert_eq!(c.node(seat).applied(ControllerId(0)), 1, "seat {seat}");
            assert_eq!(
                c.node(seat).current_epoch(),
                3,
                "seat {seat} fence raised by the accepted record"
            );
        }
    }
}
