//! Replicated multi-controller control plane for SoftCell.
//!
//! The paper (§5) keeps the controller logically centralized and defers
//! fault tolerance to "standard replication techniques" over its two
//! state classes: slow-changing strongly consistent state (subscriber
//! policy, installed paths) and fast-moving UE location that agents can
//! rebuild. This crate supplies those techniques, shaped to SoftCell's
//! split:
//!
//! * **Log shipping** ([`log`]) — every state-mutating controller
//!   operation (attach/handoff, detach, path install) becomes an
//!   append-only record, fully resolved by its proposer (permanent IP
//!   and tag chosen up front) so replay is deterministic.
//! * **Replicated store** ([`store`]) — the materialized state, built
//!   from last-writer-wins registers so replicas converge byte-for-byte
//!   regardless of cross-origin arrival order; its snapshot bytes are
//!   the recovery oracle.
//! * **Replica nodes** ([`node`]) — quorum commit over the ctlchan
//!   `Replicate`/`ReplicateAck` frames, epoch fencing (a deposed leader
//!   can never get a flow-mod acknowledged), snapshot catch-up for
//!   lagging peers, and the agent-facing front-end whose replies are
//!   gated on commit.
//! * **Cluster + re-homing** ([`cluster`]) — N active controllers
//!   partitioned by region over the membership ring, `kill -9`-style
//!   link severance for crash testing, deterministic fail-over, and
//!   agent re-homing to the successor leader with `resync` replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod log;
pub mod node;
pub mod store;

pub use cluster::{rehome_agent, Cluster, Killable, Link};
pub use log::{LogRecord, ReplicatedOp, ReplicationLog};
pub use node::{ReplicaConfig, ReplicaNode};
pub use store::{PathEntry, ReplicaStore, UeEntry, UeSlot};
