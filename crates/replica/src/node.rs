//! One controller replica: quorum-committed proposals, follower-side
//! record application, epoch fencing, and the agent-facing front-end.
//!
//! ## Commit protocol
//!
//! A node *proposes* an operation by appending it (provisionally) as the
//! next record of its own origin sequence and shipping it to every live
//! peer as a `Replicate` frame. Followers apply on receipt and
//! acknowledge; the proposal **commits** — and only then is the
//! agent-facing reply (classifier grant or flow-mod) released — once
//! `quorum` nodes (the proposer counts) hold it. A record that misses
//! quorum stays *pending* and is re-shipped, under the same index,
//! before the node accepts any new proposal: two different records can
//! therefore never exist at the same `(origin, index)`, which is what
//! keeps follower stores convergent.
//!
//! ## Fencing
//!
//! Every record carries the epoch it was proposed under. A follower
//! whose membership view (or fence) is newer rejects the record and
//! reports its epoch; the proposer observes the higher epoch in its own
//! [`EpochFence`] and fails the proposal. Since flow-mod release is
//! gated on quorum commit, **a fenced stale leader can never get a
//! flow-mod acknowledged** — the partition test in this module proves
//! it.
//!
//! ## Lock order
//!
//! `propose` → `core` → `peers`, and `core` is never held across a
//! network wait: proposals capture what they need from the core, drop
//! it, ship under `peers`, and re-acquire `core` only to commit.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use softcell_ctlchan::{
    CtlChannel, Frame, Message, PacketIn, Transport, WireFlowMod, WirePathTags, WireUeRecord,
};
use softcell_policy::clause::ClauseId;
use softcell_policy::{AppClassifier, ServicePolicy, SubscriberAttributes, UeClassifier};
use softcell_telemetry::{Registry, Stopwatch, TraceContext};
use softcell_types::{
    BaseStationId, ControllerId, EpochFence, Error, Membership, PolicyTag, PortNo, Result, SimTime,
    UeId, UeImsi,
};

use crate::log::{LogRecord, ReplicatedOp, ReplicationLog};
use crate::store::{ReplicaStore, UeEntry};

/// Base of the permanent-IP slab (100.64.0.0/10, carrier-grade NAT
/// space). Seat `s` allocates from `100.64.0.0 + (s << 16)`, so
/// concurrent region leaders never hand out colliding addresses.
const IP_SLAB_BASE: u32 = 0x6440_0000;

/// Per-seat tag slab width: seat `s` allocates tags `s*256 + 1 ..
/// s*256 + 255`, again collision-free across concurrent leaders.
const TAG_SLAB: u16 = 256;

/// Static configuration of one replica.
#[derive(Clone)]
pub struct ReplicaConfig {
    /// This node's seat.
    pub id: ControllerId,
    /// Nodes (proposer included) that must hold a record before it
    /// commits. `1` disables replication waits; a majority tolerates
    /// minority failure.
    pub quorum: usize,
    /// Per-peer deadline for one replicate/ack round trip; an
    /// unreachable peer costs one deadline, not a hang.
    pub peer_deadline: Duration,
    /// The operator policy agents' classifiers are compiled from.
    pub policy: ServicePolicy,
    /// Application signatures for classifier compilation.
    pub apps: AppClassifier,
    /// Known subscribers; unknown IMSIs fall back to
    /// [`SubscriberAttributes::default_home`].
    pub subscribers: HashMap<UeImsi, SubscriberAttributes>,
}

/// Replicated + local mutable state, guarded by one mutex (`core` in
/// the lock order). Never held across a network wait.
struct NodeCore {
    /// Own-originated committed records.
    log: ReplicationLog,
    /// Materialized replicated state (all origins).
    store: ReplicaStore,
    /// Current membership view.
    membership: Membership,
    /// A proposal that missed quorum: must commit (under its original
    /// index) before any new proposal is accepted.
    pending: Option<LogRecord>,
    /// Next permanent-IP slab offset (1-based).
    next_ip: u32,
    /// Next tag slab offset (1-based).
    next_tag: u16,
    /// Own commit watermark (highest own index that reached quorum).
    commit: u64,
}

/// How one peer answered a shipped record.
enum ShipOutcome {
    /// Applied and acknowledged (or already held — both count).
    Acked,
    /// Rejected: peer is missing earlier records and needs a snapshot.
    Gap,
    /// Rejected: peer's epoch is newer; the proposer is fenced.
    Fenced(u64),
    /// Rejected for another reason (origin not live in peer's view).
    Rejected,
}

/// One controller replica.
///
/// Generic over the ctlchan [`Transport`] so tests wire nodes with
/// loopback (or kill-switchable) links and deployments use TCP.
pub struct ReplicaNode<T: Transport> {
    cfg: ReplicaConfig,
    fence: EpochFence,
    /// Serializes proposals (and the allocation decisions they embed).
    propose: Mutex<()>,
    core: Mutex<NodeCore>,
    /// Outbound client channels, seat-indexed (`None` = self or not
    /// connected).
    peers: Mutex<Vec<Option<CtlChannel<T>>>>,
}

impl<T: Transport> ReplicaNode<T> {
    /// Creates a replica with the given membership view and outbound
    /// peer channels (seat-indexed; this node's own slot must be
    /// `None`).
    pub fn new(
        cfg: ReplicaConfig,
        membership: Membership,
        peers: Vec<Option<CtlChannel<T>>>,
    ) -> Result<Arc<ReplicaNode<T>>> {
        if cfg.id.seat() >= membership.seats() {
            return Err(Error::Config(format!(
                "{} is not a seat of a {}-seat ring",
                cfg.id,
                membership.seats()
            )));
        }
        if cfg.quorum == 0 || cfg.quorum > membership.seats() {
            return Err(Error::Config(format!(
                "quorum {} outside 1..={}",
                cfg.quorum,
                membership.seats()
            )));
        }
        if peers.len() != membership.seats() {
            return Err(Error::Config(format!(
                "{} peer slots for {} seats",
                peers.len(),
                membership.seats()
            )));
        }
        let epoch = membership.epoch();
        Registry::global()
            .gauge("softcell_replica_current_epoch")
            .set(epoch);
        Ok(Arc::new(ReplicaNode {
            fence: EpochFence::new(epoch),
            propose: Mutex::new(()),
            core: Mutex::new(NodeCore {
                log: ReplicationLog::new(),
                store: ReplicaStore::new(),
                membership,
                pending: None,
                next_ip: 0,
                next_tag: 0,
                commit: 0,
            }),
            peers: Mutex::new(peers),
            cfg,
        }))
    }

    /// This node's seat.
    pub fn id(&self) -> ControllerId {
        self.cfg.id
    }

    /// The epoch this node's fence currently stands at.
    pub fn current_epoch(&self) -> u64 {
        self.fence.current()
    }

    /// A copy of the current membership view.
    pub fn membership(&self) -> Membership {
        self.core.lock().membership.clone()
    }

    /// Whether this node leads `bs`'s region under its current view.
    pub fn is_leader_for(&self, bs: BaseStationId) -> bool {
        self.core.lock().membership.leader_of_station(bs) == Some(self.cfg.id)
    }

    /// The deterministic byte image of the replicated store (the
    /// recovery oracle).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.core.lock().store.snapshot_bytes()
    }

    /// The live store entry for `imsi`, if attached.
    pub fn store_ue(&self, imsi: UeImsi) -> Option<UeEntry> {
        self.core.lock().store.ue(imsi).copied()
    }

    /// Highest index applied from `origin`.
    pub fn applied(&self, origin: ControllerId) -> u64 {
        self.core.lock().store.applied(origin)
    }

    /// This node's own commit watermark.
    pub fn commit_index(&self) -> u64 {
        self.core.lock().commit
    }

    /// Replaces the outbound channel for `seat` (used when re-wiring
    /// links after a failure).
    pub fn set_peer(&self, seat: usize, chan: Option<CtlChannel<T>>) -> Result<()> {
        let mut peers = self.peers.lock();
        let slot = peers
            .get_mut(seat)
            .ok_or_else(|| Error::Range(format!("no peer slot {seat}")))?;
        *slot = chan;
        Ok(())
    }

    /// Locally adopts a newer membership view (the fail-over initiator
    /// calls this before broadcasting). Older or equal views are
    /// ignored.
    pub fn adopt_membership(&self, view: Membership) {
        let mut core = self.core.lock();
        if view.epoch() > core.membership.epoch() {
            let epoch = view.epoch();
            core.membership = view;
            drop(core);
            self.fence.observe(epoch);
            let reg = Registry::global();
            reg.counter("softcell_replica_epoch_changes_total").inc();
            reg.gauge("softcell_replica_current_epoch").set(epoch);
            reg.journal()
                .record("epoch_change", epoch, u64::from(self.cfg.id.0));
        }
    }

    /// Pushes the current membership view to every live peer; returns
    /// how many acknowledged it. A peer replying with a *strictly
    /// newer* epoch did not adopt ours — it kept its own view — so that
    /// is a fencing signal: this node adopts the newer view and the
    /// broadcast fails, forcing the caller to abort (or retry under)
    /// the fresher view instead of fail-ing over on a stale one.
    pub fn broadcast_epoch_change(&self) -> Result<usize> {
        let (epoch, live) = {
            let core = self.core.lock();
            (
                core.membership.epoch(),
                core.membership.live_flags().to_vec(),
            )
        };
        let msg = Message::EpochChange {
            epoch,
            live: live.clone(),
        };
        let mut adopted = 0;
        let mut newer: Option<(u64, Vec<bool>)> = None;
        {
            let mut peers = self.peers.lock();
            for (seat, &alive) in live.iter().enumerate() {
                if seat == self.cfg.id.seat() || !alive {
                    continue;
                }
                let Some(chan) = peers.get_mut(seat).and_then(|s| s.as_mut()) else {
                    continue;
                };
                chan.set_deadline(Some(self.cfg.peer_deadline))?;
                let res = chan.request(&msg);
                let _ = chan.set_deadline(None);
                if let Ok(raw) = res {
                    if let Ok(frame) = Frame::new_checked(raw.as_slice()) {
                        if let Ok(Message::EpochChange {
                            epoch: got,
                            live: peer_live,
                        }) = frame.message()
                        {
                            if got > epoch {
                                newer = Some((got, peer_live));
                                break;
                            }
                            if got == epoch {
                                adopted += 1;
                            }
                        }
                    }
                }
            }
        }
        if let Some((got, peer_live)) = newer {
            self.fence.observe(got);
            if let Ok(view) = Membership::from_parts(got, peer_live) {
                self.adopt_membership(view);
            }
            return Err(Error::InvalidState(format!(
                "{} fenced during epoch broadcast: a peer already holds epoch {got} > {epoch}",
                self.cfg.id
            )));
        }
        Ok(adopted)
    }

    /// Pushes this node's store image to every live peer, converging
    /// the cluster after an epoch change. Receivers *merge* the image
    /// (point-wise LWW join), so no committed record is lost and no
    /// watermark regresses; a receiver that held records this node
    /// lacks hands its merged image back, which is merged here and
    /// pushed again — after the second round every survivor holds the
    /// union. Returns how many peers adopted in the final round.
    pub fn push_snapshot(&self) -> Result<usize> {
        let mut adopted = 0;
        for _round in 0..2 {
            let (payload, applied, epoch, live) = {
                let core = self.core.lock();
                let seats = core.membership.seats();
                (
                    core.store.snapshot_bytes(),
                    (0..seats)
                        .map(|s| core.store.applied(ControllerId(s as u32)))
                        .collect::<Vec<u64>>(),
                    core.membership.epoch(),
                    core.membership.live_flags().to_vec(),
                )
            };
            let mut returned: Vec<ReplicaStore> = Vec::new();
            adopted = 0;
            {
                let mut peers = self.peers.lock();
                for (seat, &alive) in live.iter().enumerate() {
                    if seat == self.cfg.id.seat() || !alive {
                        continue;
                    }
                    let Some(chan) = peers.get_mut(seat).and_then(|s| s.as_mut()) else {
                        continue;
                    };
                    match Self::send_snapshot(
                        chan,
                        self.cfg.id,
                        epoch,
                        &applied,
                        &payload,
                        self.cfg.peer_deadline,
                    ) {
                        Ok(None) => adopted += 1,
                        Ok(Some(store)) => {
                            adopted += 1;
                            returned.push(store);
                        }
                        Err(_) => {}
                    }
                }
            }
            let mut changed = false;
            if !returned.is_empty() {
                let mut core = self.core.lock();
                for store in &returned {
                    changed |= core.store.merge(store);
                }
            }
            if !changed {
                break;
            }
        }
        Ok(adopted)
    }

    // ------------------------------------------------------------------
    // Proposal path (leader side)
    // ------------------------------------------------------------------

    /// Proposes one operation and blocks until it commits (quorum) or
    /// fails. Returns the committed record's own-origin index.
    pub fn propose(&self, op: ReplicatedOp) -> Result<u64> {
        // Trace root for the whole quorum round: per-peer replicate_ack
        // spans and the commit-side release span nest under it.
        let _sp = Registry::global().tracer().root("replica_propose");
        let _serial = self.propose.lock();
        self.propose_inner(op)
    }

    /// Proposal body; caller must hold the `propose` lock.
    fn propose_inner(&self, op: ReplicatedOp) -> Result<u64> {
        self.flush_pending()?;
        let record = {
            let mut core = self.core.lock();
            self.check_can_propose(&core)?;
            let record = LogRecord {
                origin: self.cfg.id,
                epoch: core.membership.epoch(),
                index: core.log.next_index(),
                op,
            };
            core.pending = Some(record);
            record
        };
        self.ship_and_commit(record)
    }

    /// Re-ships a proposal stuck from an earlier failed quorum round —
    /// byte-identical to the first attempt (same index, content, *and*
    /// epoch stamp, so followers that applied the old copy and
    /// followers first seeing the re-ship materialize the same entry).
    /// Only the transport-level fence epoch in the `Replicate` frame is
    /// current, which is what lets followers with a newer view accept
    /// it.
    fn flush_pending(&self) -> Result<()> {
        let stuck = {
            let core = self.core.lock();
            if core.pending.is_some() {
                self.check_can_propose(&core)?;
            }
            core.pending
        };
        match stuck {
            Some(r) => self.ship_and_commit(r).map(|_| ()),
            None => Ok(()),
        }
    }

    /// Fencing and liveness gate for proposals.
    fn check_can_propose(&self, core: &NodeCore) -> Result<()> {
        let epoch = core.membership.epoch();
        let fenced_at = self.fence.current();
        if fenced_at > epoch {
            return Err(Error::InvalidState(format!(
                "{} fenced: proposing under epoch {epoch} but fence at {fenced_at}",
                self.cfg.id
            )));
        }
        if !core.membership.is_live(self.cfg.id) {
            return Err(Error::InvalidState(format!(
                "{} is not live in epoch {epoch}",
                self.cfg.id
            )));
        }
        Ok(())
    }

    /// Ships `record` to every live peer, gathers acknowledgements
    /// (snapshot-healing gapped peers), and commits locally once quorum
    /// is reached.
    fn ship_and_commit(&self, record: LogRecord) -> Result<u64> {
        let reg = Registry::global();
        let payload = record.encode();
        let (live, commit_before, fence_epoch) = {
            let core = self.core.lock();
            (
                core.membership.live_flags().to_vec(),
                core.commit,
                core.membership.epoch(),
            )
        };
        let mut acks = 1usize; // the proposer holds the record
        let mut gapped: Vec<usize> = Vec::new();
        {
            let mut peers = self.peers.lock();
            for (seat, &alive) in live.iter().enumerate() {
                if seat == self.cfg.id.seat() || !alive {
                    continue;
                }
                let Some(chan) = peers.get_mut(seat).and_then(|s| s.as_mut()) else {
                    continue;
                };
                // span ends (and the channel's trace context is
                // restored) before the outcome is acted on, so the
                // fenced early-return below cannot leak a stale context
                // onto this long-lived peer channel
                let clock = Stopwatch::start();
                let shipped = {
                    let mut sp = reg.tracer().span("replicate_ack");
                    sp.set_shard(seat);
                    chan.set_trace(sp.ctx());
                    let r = Self::ship_one(
                        chan,
                        &record,
                        &payload,
                        commit_before,
                        fence_epoch,
                        self.cfg.peer_deadline,
                    );
                    chan.set_trace(TraceContext::NONE);
                    r
                };
                match shipped {
                    Ok(ShipOutcome::Acked) => {
                        clock.record(&reg.histogram("softcell_replica_ship_ack_ns"));
                        reg.counter("softcell_replica_acks_total").inc();
                        acks += 1;
                    }
                    Ok(ShipOutcome::Gap) => gapped.push(seat),
                    Ok(ShipOutcome::Fenced(newer)) => {
                        self.fence.observe(newer);
                        return Err(Error::InvalidState(format!(
                            "{} fenced by epoch {newer} while shipping index {}",
                            self.cfg.id, record.index
                        )));
                    }
                    Ok(ShipOutcome::Rejected) | Err(_) => {
                        // unreachable or unwilling peer: simply no ack
                    }
                }
            }
        }
        if !gapped.is_empty() {
            acks += self.heal_gapped_peers(&gapped, &record, &payload, commit_before)?;
        }
        if acks >= self.cfg.quorum {
            let _sp = reg.tracer().span("release");
            let mut core = self.core.lock();
            core.log.append(record)?;
            core.store.apply(&record)?;
            core.commit = record.index;
            core.pending = None;
            reg.counter("softcell_replica_log_appends_total").inc();
            reg.counter("softcell_replica_commits_total").inc();
            // lag = live peers that did not acknowledge this round
            reg.gauge("softcell_replica_replication_lag")
                .set((self.live_targets(&live) + 1).saturating_sub(acks) as u64);
            Ok(record.index)
        } else {
            // The record stays pending; the next proposal (or explicit
            // retry) re-ships it under the same index.
            Err(Error::Timeout(format!(
                "index {} reached {acks}/{} quorum",
                record.index, self.cfg.quorum
            )))
        }
    }

    /// Number of live peers a proposal is shipped to.
    fn live_targets(&self, live: &[bool]) -> usize {
        live.iter()
            .enumerate()
            .filter(|(seat, l)| **l && *seat != self.cfg.id.seat())
            .count()
    }

    /// Sends the peers that gap-rejected `record` a store snapshot,
    /// then re-ships the record. Returns how many converted to acks.
    fn heal_gapped_peers(
        &self,
        gapped: &[usize],
        record: &LogRecord,
        payload: &[u8],
        commit_before: u64,
    ) -> Result<usize> {
        let reg = Registry::global();
        let (snapshot, applied, epoch) = {
            let core = self.core.lock();
            let seats = core.membership.seats();
            (
                core.store.snapshot_bytes(),
                (0..seats)
                    .map(|s| core.store.applied(ControllerId(s as u32)))
                    .collect::<Vec<u64>>(),
                core.membership.epoch(),
            )
        };
        let mut converted = 0;
        let mut returned: Vec<ReplicaStore> = Vec::new();
        {
            let mut peers = self.peers.lock();
            for &seat in gapped {
                let Some(chan) = peers.get_mut(seat).and_then(|s| s.as_mut()) else {
                    continue;
                };
                match Self::send_snapshot(
                    chan,
                    self.cfg.id,
                    epoch,
                    &applied,
                    &snapshot,
                    self.cfg.peer_deadline,
                ) {
                    Ok(None) => {}
                    Ok(Some(store)) => returned.push(store),
                    Err(_) => continue,
                }
                if let Ok(ShipOutcome::Acked) = Self::ship_one(
                    chan,
                    record,
                    payload,
                    commit_before,
                    epoch,
                    self.cfg.peer_deadline,
                ) {
                    reg.counter("softcell_replica_acks_total").inc();
                    converted += 1;
                }
            }
        }
        if !returned.is_empty() {
            // A gapped peer can still be *ahead* on other origins; keep
            // whatever its merged image taught us.
            let mut core = self.core.lock();
            for store in &returned {
                core.store.merge(store);
            }
        }
        Ok(converted)
    }

    /// One replicate/ack round trip with a single peer. `fence_epoch`
    /// is the sender's *current* epoch and rides in the frame header as
    /// the fencing key; the payload record keeps the epoch it was
    /// originally proposed under, which may be older when a pending
    /// record is re-shipped after the proposer survived an epoch change
    /// — re-stamping the record itself would make replicas that deduped
    /// the first copy diverge from replicas that only saw the re-ship.
    fn ship_one(
        chan: &mut CtlChannel<T>,
        record: &LogRecord,
        payload: &[u8],
        commit: u64,
        fence_epoch: u64,
        deadline: Duration,
    ) -> Result<ShipOutcome> {
        let msg = Message::Replicate {
            origin: record.origin.0,
            epoch: fence_epoch,
            index: record.index,
            commit,
            payload: Cow::Borrowed(payload),
        };
        chan.set_deadline(Some(deadline))?;
        let res = chan.request(&msg);
        let _ = chan.set_deadline(None);
        let raw = res?;
        let frame = Frame::new_checked(raw.as_slice())?;
        let reply = frame.message()?;
        if let Some(e) = reply.as_error() {
            return Err(e);
        }
        match reply {
            Message::ReplicateAck {
                epoch,
                accepted,
                have_index,
                ..
            } => Ok(if accepted {
                ShipOutcome::Acked
            } else if epoch > fence_epoch {
                ShipOutcome::Fenced(epoch)
            } else if have_index >= record.index {
                ShipOutcome::Acked
            } else if have_index + 1 < record.index {
                ShipOutcome::Gap
            } else {
                ShipOutcome::Rejected
            }),
            other => Err(softcell_ctlchan::channel::unexpected(
                "replicate-ack",
                &other,
            )),
        }
    }

    /// One snapshot-transfer round trip with a single peer. A plain ack
    /// means the peer absorbed our image; a `SnapshotTransfer` reply
    /// carries the peer's merged store — it held records we lack — for
    /// the caller to merge back.
    fn send_snapshot(
        chan: &mut CtlChannel<T>,
        origin: ControllerId,
        epoch: u64,
        applied: &[u64],
        payload: &[u8],
        deadline: Duration,
    ) -> Result<Option<ReplicaStore>> {
        let msg = Message::SnapshotTransfer {
            origin: origin.0,
            epoch,
            applied: applied.to_vec(),
            payload: Cow::Borrowed(payload),
        };
        chan.set_deadline(Some(deadline))?;
        let res = chan.request(&msg);
        let _ = chan.set_deadline(None);
        let raw = res?;
        let frame = Frame::new_checked(raw.as_slice())?;
        let reply = frame.message()?;
        if let Some(e) = reply.as_error() {
            return Err(e);
        }
        match reply {
            Message::ReplicateAck { accepted: true, .. } => Ok(None),
            Message::ReplicateAck { .. } => Err(Error::InvalidState(
                "peer refused snapshot (stale epoch?)".into(),
            )),
            Message::SnapshotTransfer { payload, .. } => Ok(Some(ReplicaStore::restore(&payload)?)),
            other => Err(softcell_ctlchan::channel::unexpected(
                "snapshot ack",
                &other,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Peer-facing handler (follower side)
    // ------------------------------------------------------------------

    /// Handles one controller-to-controller message; `None` for
    /// messages the ctlchan serve loop answers itself.
    pub fn handle_peer(&self, msg: &Message<'_>) -> Option<Message<'static>> {
        match msg {
            Message::Replicate {
                origin,
                epoch,
                index,
                commit,
                payload,
            } => Some(self.on_replicate(*origin, *epoch, *index, *commit, payload)),
            Message::SnapshotTransfer {
                origin,
                epoch,
                applied,
                payload,
            } => Some(self.on_snapshot(*origin, *epoch, applied, payload)),
            Message::EpochChange { epoch, live } => Some(self.on_epoch_change(*epoch, live)),
            _ => None,
        }
    }

    /// Spawns a thread serving controller-to-controller traffic from
    /// one peer over `transport`.
    pub fn serve_peer(self: &Arc<Self>, transport: T) -> JoinHandle<Result<()>>
    where
        T: 'static,
    {
        let node = Arc::clone(self);
        std::thread::spawn(move || {
            softcell_ctlchan::serve(transport, || 0, move |msg, _ctx| node.handle_peer(msg))
        })
    }

    fn on_replicate(
        &self,
        origin: u32,
        epoch: u64,
        index: u64,
        commit: u64,
        payload: &[u8],
    ) -> Message<'static> {
        let reg = Registry::global();
        let record = match LogRecord::decode(payload) {
            Ok(r) => r,
            Err(e) => return Message::from_error(&e),
        };
        // The frame epoch is the sender's *current* (fencing) epoch;
        // the record keeps the epoch it was proposed under, which may
        // trail the frame's after a pending re-ship — but never lead it.
        if record.origin.0 != origin || record.epoch > epoch || record.index != index {
            return Message::from_error(&Error::Malformed(
                "replicate header disagrees with its payload".into(),
            ));
        }
        let mut core = self.core.lock();
        let my_epoch = core.membership.epoch().max(self.fence.current());
        let reject = |core: &NodeCore, my_epoch| Message::ReplicateAck {
            origin: self.cfg.id.0,
            epoch: my_epoch,
            index,
            accepted: false,
            have_index: core.store.applied(record.origin),
        };
        if epoch < my_epoch {
            // A stale leader's record: fence it. This is the property
            // the partition test pins down — rejection here, combined
            // with commit-gated flow-mod release, is what guarantees a
            // deposed leader can never act.
            reg.counter("softcell_replica_stale_epoch_rejections_total")
                .inc();
            reg.journal()
                .record("stale_epoch_reject", epoch, u64::from(origin));
            return reject(&core, my_epoch);
        }
        if epoch > core.membership.epoch() {
            // The proposer is ahead of our view; the epoch-change
            // broadcast is in flight. Raise the fence now, accept the
            // record (it is from the newer term, not an older one).
            // Liveness cannot be judged here: our stale view may well
            // declare the origin dead when the newer view revived it.
            self.fence.observe(epoch);
        } else if !core.membership.is_live(record.origin) {
            // A record at our own epoch from a seat this very view
            // declares dead — not a stale-epoch case, its own signal.
            reg.counter("softcell_replica_dead_origin_rejections_total")
                .inc();
            reg.journal()
                .record("dead_origin_reject", epoch, u64::from(origin));
            return reject(&core, my_epoch);
        }
        match core.store.apply(&record) {
            Ok(applied) => {
                if applied {
                    reg.counter("softcell_replica_acks_total").inc();
                    reg.gauge("softcell_replica_replication_lag")
                        .set(index.saturating_sub(commit));
                }
                Message::ReplicateAck {
                    origin: self.cfg.id.0,
                    epoch: my_epoch.max(epoch),
                    index,
                    accepted: true,
                    have_index: core.store.applied(record.origin),
                }
            }
            Err(_) => reject(&core, my_epoch.max(epoch)),
        }
    }

    fn on_snapshot(
        &self,
        origin: u32,
        epoch: u64,
        applied: &[u64],
        payload: &[u8],
    ) -> Message<'static> {
        let reg = Registry::global();
        let incoming = match ReplicaStore::restore(payload) {
            Ok(s) => s,
            Err(e) => return Message::from_error(&e),
        };
        let mut core = self.core.lock();
        let my_epoch = core.membership.epoch().max(self.fence.current());
        if epoch < my_epoch {
            reg.counter("softcell_replica_stale_epoch_rejections_total")
                .inc();
            return Message::ReplicateAck {
                origin: self.cfg.id.0,
                epoch: my_epoch,
                index: 0,
                accepted: false,
                have_index: 0,
            };
        }
        // Merge, never replace: the point-wise LWW join keeps every
        // record either side applied — our own committed tail *and*
        // third-party records the sender happens to be behind on — so a
        // snapshot can never erase a committed record or regress an
        // applied watermark.
        let had_more = core.store.ahead_of(&incoming);
        core.store.merge(&incoming);
        reg.counter("softcell_replica_snapshots_total").inc();
        reg.journal()
            .record("snapshot_merged", epoch, u64::from(origin));
        let _ = applied; // sender watermarks are carried by the store image itself
        if had_more {
            // We hold records the sender lacks: hand the merged image
            // back so the sender (the fail-over initiator) converges on
            // the union and can re-push it to the other survivors.
            let seats = core.membership.seats();
            let merged_applied: Vec<u64> = (0..seats)
                .map(|s| core.store.applied(ControllerId(s as u32)))
                .collect();
            return Message::SnapshotTransfer {
                origin: self.cfg.id.0,
                epoch: my_epoch.max(epoch),
                applied: merged_applied,
                payload: Cow::Owned(core.store.snapshot_bytes()),
            };
        }
        let have = core.store.applied(ControllerId(origin));
        Message::ReplicateAck {
            origin: self.cfg.id.0,
            epoch: my_epoch.max(epoch),
            index: have,
            accepted: true,
            have_index: have,
        }
    }

    fn on_epoch_change(&self, epoch: u64, live: &[bool]) -> Message<'static> {
        let mut core = self.core.lock();
        if epoch > core.membership.epoch() {
            match Membership::from_parts(epoch, live.to_vec()) {
                Ok(view) => {
                    core.membership = view;
                    self.fence.observe(epoch);
                    let reg = Registry::global();
                    reg.counter("softcell_replica_epoch_changes_total").inc();
                    reg.gauge("softcell_replica_current_epoch").set(epoch);
                    reg.journal()
                        .record("epoch_change", epoch, u64::from(self.cfg.id.0));
                }
                Err(e) => return Message::from_error(&e),
            }
        }
        Message::EpochChange {
            epoch: core.membership.epoch(),
            live: core.membership.live_flags().to_vec(),
        }
    }

    // ------------------------------------------------------------------
    // Agent-facing handler (the southbound front-end)
    // ------------------------------------------------------------------

    /// Handles one agent message. Attach/detach/path-request all
    /// propose through the replicated log; the reply — and with it the
    /// agent's flow-mod or classifier — is only released after quorum
    /// commit.
    pub fn handle_agent(&self, msg: &Message<'_>) -> Option<Message<'static>> {
        let Message::PacketIn(pi) = msg else {
            return None;
        };
        let result = match *pi {
            PacketIn::Attach {
                imsi,
                bs,
                ue_id,
                now,
            } => self.on_attach(imsi, bs, ue_id, now),
            PacketIn::Detach { imsi } => self.on_detach(imsi),
            PacketIn::PathRequest { bs, clause } => self.on_path_request(bs, clause),
        };
        Some(result.unwrap_or_else(|e| Message::from_error(&e)))
    }

    /// Spawns a thread serving one agent connection over `transport`.
    pub fn serve_agent(self: &Arc<Self>, transport: T) -> JoinHandle<Result<()>>
    where
        T: 'static,
    {
        let node = Arc::clone(self);
        std::thread::spawn(move || {
            softcell_ctlchan::serve(transport, || 0, move |msg, _ctx| node.handle_agent(msg))
        })
    }

    /// Refuses agent operations for stations this node does not lead —
    /// the agent's cue to re-home to the deterministic successor.
    fn check_leadership(&self, core: &NodeCore, bs: BaseStationId) -> Result<()> {
        let leader = core.membership.leader_of_station(bs);
        if leader != Some(self.cfg.id) {
            return Err(Error::InvalidState(format!(
                "{} does not lead {bs}'s region in epoch {} (leader: {})",
                self.cfg.id,
                core.membership.epoch(),
                leader.map_or_else(|| "none".into(), |l| l.to_string()),
            )));
        }
        Ok(())
    }

    fn on_attach(
        &self,
        imsi: UeImsi,
        bs: BaseStationId,
        ue_id: UeId,
        now: SimTime,
    ) -> Result<Message<'static>> {
        let _serial = self.propose.lock();
        let (permanent_ip, fresh) = {
            let mut core = self.core.lock();
            self.check_leadership(&core, bs)?;
            match core.store.ue(imsi) {
                // Re-attach (resync or handoff): the permanent address
                // follows the subscriber, exactly as over the
                // single-controller wire path.
                Some(e) => (e.permanent_ip, false),
                None => {
                    if core.next_ip >= 0xFFFF {
                        return Err(Error::Exhausted(format!(
                            "permanent-IP slab of seat {} exhausted",
                            self.cfg.id
                        )));
                    }
                    core.next_ip += 1;
                    let raw = IP_SLAB_BASE | ((self.cfg.id.0 & 0x3F) << 16) | core.next_ip;
                    (std::net::Ipv4Addr::from(raw), true)
                }
            }
        };
        let op = ReplicatedOp::Attach {
            imsi,
            bs,
            ue_id,
            since: now,
            permanent_ip,
        };
        if let Err(e) = self.propose_inner(op) {
            if fresh {
                // Return the slab slot unless the pending record still
                // carries it (a quorum miss or fence keeps the record
                // pending; it must commit under this allocation). A
                // failure *before* our record was created — a stuck
                // earlier proposal, a raised fence — must not burn a
                // slot per retry until the 65k slab runs dry.
                let mut core = self.core.lock();
                let retained = matches!(&core.pending, Some(r) if r.op == op);
                if !retained {
                    core.next_ip -= 1;
                }
            }
            return Err(e);
        }
        let attrs = self
            .cfg
            .subscribers
            .get(&imsi)
            .cloned()
            .unwrap_or_else(|| SubscriberAttributes::default_home(imsi));
        let classifier = UeClassifier::compile(&self.cfg.policy, &self.cfg.apps, &attrs);
        Ok(Message::ClassifierReply {
            record: WireUeRecord {
                imsi,
                permanent_ip,
                bs,
                ue_id,
                since: now,
            },
            classifier: Some(softcell_controller::wire::classifier_to_wire(&classifier)),
        })
    }

    fn on_detach(&self, imsi: UeImsi) -> Result<Message<'static>> {
        let _serial = self.propose.lock();
        let (entry, since) = {
            let core = self.core.lock();
            let (entry, since) = core
                .ue_slot_attached(imsi)
                .ok_or_else(|| Error::NotFound(format!("{imsi} is not attached")))?;
            self.check_leadership(&core, entry.bs)?;
            (entry, since)
        };
        self.propose_inner(ReplicatedOp::Detach { imsi, since })?;
        Ok(Message::ClassifierReply {
            record: WireUeRecord {
                imsi,
                permanent_ip: entry.permanent_ip,
                bs: entry.bs,
                ue_id: entry.ue_id,
                since,
            },
            classifier: None,
        })
    }

    fn on_path_request(&self, bs: BaseStationId, clause: ClauseId) -> Result<Message<'static>> {
        let _serial = self.propose.lock();
        let (tag, already_installed) = {
            let mut core = self.core.lock();
            self.check_leadership(&core, bs)?;
            match core.store.path(bs, clause) {
                Some(p) => (p.tag, true),
                None => {
                    if core.next_tag >= TAG_SLAB - 1 {
                        return Err(Error::Exhausted(format!(
                            "tag slab of seat {} exhausted",
                            self.cfg.id
                        )));
                    }
                    core.next_tag += 1;
                    (
                        PolicyTag(self.cfg.id.0 as u16 * TAG_SLAB + core.next_tag),
                        false,
                    )
                }
            }
        };
        if !already_installed {
            let op = ReplicatedOp::PathInstall {
                bs,
                clause,
                tag,
                port: PortNo(1),
            };
            if let Err(e) = self.propose_inner(op) {
                // Same slab discipline as on_attach: give the tag back
                // unless the pending record holds it.
                let mut core = self.core.lock();
                let retained = matches!(&core.pending, Some(r) if r.op == op);
                if !retained {
                    core.next_tag -= 1;
                }
                return Err(e);
            }
        }
        // Same one-tag end-to-end stand-in as the single-controller
        // wire front-end.
        Ok(Message::FlowMod(vec![WireFlowMod {
            bs,
            clause,
            tags: WirePathTags {
                uplink_entry: tag,
                uplink_exit: tag,
                downlink_final: tag,
                access_out_port: PortNo(1),
                qos: None,
            },
        }]))
    }
}

impl NodeCore {
    /// The attached entry and its LWW timestamp for `imsi`.
    fn ue_slot_attached(&self, imsi: UeImsi) -> Option<(UeEntry, SimTime)> {
        let slot = self.store.ue_slot(imsi)?;
        slot.entry.map(|e| (e, slot.since))
    }
}
