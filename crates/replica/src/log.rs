//! The append-only replicated operation log.
//!
//! Every state-mutating controller operation — UE attach (which also
//! covers handoff, as an upsert by IMSI), detach, and policy-path
//! install — is serialized as a [`LogRecord`] before any flow-mod is
//! released. The *leader resolves all nondeterminism up front*: the
//! permanent IP and the policy tag are chosen by the originating node
//! and carried in the record, so replaying the same records in the same
//! per-origin order reconstructs byte-for-byte identical state on every
//! replica ([`crate::store::ReplicaStore`]).
//!
//! Records are indexed per origin: each controller numbers its own
//! proposals `1, 2, 3, …` within its current epoch, and followers track
//! one applied watermark per origin seat. A record whose index is not
//! exactly `watermark + 1` is a gap (the follower missed traffic and
//! needs a snapshot) or a duplicate (a leader retry after a partial
//! quorum round) — both are detected, never silently applied.
//!
//! The wire encoding is hand-rolled and panic-free in both directions:
//! a malformed record from a peer must surface as
//! [`softcell_types::Error::Malformed`], never abort the controller.

use std::net::Ipv4Addr;

use softcell_policy::clause::ClauseId;
use softcell_types::{
    BaseStationId, ControllerId, Error, PolicyTag, PortNo, Result, SimTime, UeId, UeImsi,
};

/// A state-mutating controller operation, fully resolved by the leader.
///
/// Every variant is an idempotent upsert (or removal) keyed by its
/// natural identity, so applying the same record twice is harmless and
/// follower replay needs no local decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicatedOp {
    /// UE attach *or handoff*: an upsert by IMSI. The permanent IP was
    /// resolved by the leader (reused for a known UE, slab-allocated
    /// for a new one) so followers never allocate.
    Attach {
        /// Subscriber identity.
        imsi: UeImsi,
        /// Base station the UE is (now) at.
        bs: BaseStationId,
        /// Local UE id at that base station.
        ue_id: UeId,
        /// Attach/handoff time.
        since: SimTime,
        /// The leader-resolved permanent address.
        permanent_ip: Ipv4Addr,
    },
    /// UE detach: tombstones the IMSI's record. Carries the `since` of
    /// the entry being removed so the store's last-writer-wins merge
    /// can order the tombstone against concurrent attaches (a stale
    /// attach arriving late must not resurrect the UE).
    Detach {
        /// Subscriber identity.
        imsi: UeImsi,
        /// Attach time of the entry being detached (merge key).
        since: SimTime,
    },
    /// Policy-path install for `(bs, clause)` with the leader-chosen
    /// tag (drawn from the origin seat's tag slab, so concurrent
    /// region leaders never collide).
    PathInstall {
        /// Originating base station.
        bs: BaseStationId,
        /// Governing policy clause.
        clause: ClauseId,
        /// The tag realizing the path end to end.
        tag: PolicyTag,
        /// Access-switch output port for the path's first hop.
        port: PortNo,
    },
}

const OP_ATTACH: u8 = 1;
const OP_DETACH: u8 = 2;
const OP_PATH_INSTALL: u8 = 3;

/// One entry of the replicated log: an operation stamped with its
/// origin seat, the epoch it was proposed under, and its per-origin
/// index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// The proposing controller.
    pub origin: ControllerId,
    /// Epoch the proposal was made under; receivers reject records from
    /// epochs older than their membership view (fencing).
    pub epoch: u64,
    /// Per-origin sequence number (first record is 1).
    pub index: u64,
    /// The operation itself.
    pub op: ReplicatedOp,
}

impl LogRecord {
    /// Serializes the record for a `Replicate` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(&self.origin.0.to_be_bytes());
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.index.to_be_bytes());
        match self.op {
            ReplicatedOp::Attach {
                imsi,
                bs,
                ue_id,
                since,
                permanent_ip,
            } => {
                out.push(OP_ATTACH);
                out.extend_from_slice(&imsi.0.to_be_bytes());
                out.extend_from_slice(&bs.0.to_be_bytes());
                out.extend_from_slice(&ue_id.0.to_be_bytes());
                out.extend_from_slice(&since.0.to_be_bytes());
                out.extend_from_slice(&u32::from(permanent_ip).to_be_bytes());
            }
            ReplicatedOp::Detach { imsi, since } => {
                out.push(OP_DETACH);
                out.extend_from_slice(&imsi.0.to_be_bytes());
                out.extend_from_slice(&since.0.to_be_bytes());
            }
            ReplicatedOp::PathInstall {
                bs,
                clause,
                tag,
                port,
            } => {
                out.push(OP_PATH_INSTALL);
                out.extend_from_slice(&bs.0.to_be_bytes());
                out.extend_from_slice(&clause.0.to_be_bytes());
                out.extend_from_slice(&tag.0.to_be_bytes());
                out.extend_from_slice(&port.0.to_be_bytes());
            }
        }
        out
    }

    /// Parses a record from a `Replicate` payload. Every malformed
    /// input — truncation, trailing bytes, an unknown op tag — is an
    /// [`Error::Malformed`], never a panic.
    pub fn decode(buf: &[u8]) -> Result<LogRecord> {
        let mut r = Cursor::new(buf);
        let origin = ControllerId(r.take_u32()?);
        let epoch = r.take_u64()?;
        let index = r.take_u64()?;
        let op = match r.take_u8()? {
            OP_ATTACH => ReplicatedOp::Attach {
                imsi: UeImsi(r.take_u64()?),
                bs: BaseStationId(r.take_u32()?),
                ue_id: UeId(r.take_u16()?),
                since: SimTime(r.take_u64()?),
                permanent_ip: Ipv4Addr::from(r.take_u32()?),
            },
            OP_DETACH => ReplicatedOp::Detach {
                imsi: UeImsi(r.take_u64()?),
                since: SimTime(r.take_u64()?),
            },
            OP_PATH_INSTALL => ReplicatedOp::PathInstall {
                bs: BaseStationId(r.take_u32()?),
                clause: ClauseId(r.take_u16()?),
                tag: PolicyTag(r.take_u16()?),
                port: PortNo(r.take_u16()?),
            },
            other => {
                return Err(Error::Malformed(format!(
                    "unknown replicated-op tag {other}"
                )))
            }
        };
        r.done()?;
        Ok(LogRecord {
            origin,
            epoch,
            index,
            op,
        })
    }
}

/// Bounds-checked big-endian reader over a record or snapshot payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = self
                    .buf
                    .get(self.pos..end)
                    .ok_or_else(|| Error::Malformed("log record cursor out of bounds".into()))?;
                self.pos = end;
                Ok(s)
            }
            None => Err(Error::Malformed(format!(
                "log record truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?.first().copied().unwrap_or_default())
    }

    pub(crate) fn take_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        b.try_into()
            .map(u16::from_be_bytes)
            .map_err(|_| Error::Malformed("u16 field truncated".into()))
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        b.try_into()
            .map(u32::from_be_bytes)
            .map_err(|_| Error::Malformed("u32 field truncated".into()))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        b.try_into()
            .map(u64::from_be_bytes)
            .map_err(|_| Error::Malformed("u64 field truncated".into()))
    }

    pub(crate) fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::Malformed(format!(
                "{} trailing bytes after log record",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// A node's own origination sequence: the records it has proposed and
/// committed, in index order, possibly compacted from the front after a
/// snapshot superseded the prefix.
#[derive(Clone, Debug)]
pub struct ReplicationLog {
    /// `records[i]` has index `first_index + i`.
    records: Vec<LogRecord>,
    first_index: u64,
}

impl Default for ReplicationLog {
    fn default() -> ReplicationLog {
        ReplicationLog::new()
    }
}

impl ReplicationLog {
    /// An empty log whose first record will be index 1.
    pub fn new() -> ReplicationLog {
        ReplicationLog::starting_at(1)
    }

    /// An empty log continuing after a snapshot: the next append must
    /// carry `first_index`.
    pub fn starting_at(first_index: u64) -> ReplicationLog {
        ReplicationLog {
            records: Vec::new(),
            first_index: first_index.max(1),
        }
    }

    /// Index the next appended record must carry.
    pub fn next_index(&self) -> u64 {
        self.first_index + self.records.len() as u64
    }

    /// Index of the newest record, 0 when empty since compaction start.
    pub fn last_index(&self) -> u64 {
        self.next_index() - 1
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends the next record; its index must be exactly
    /// [`next_index`](Self::next_index).
    pub fn append(&mut self, record: LogRecord) -> Result<()> {
        if record.index != self.next_index() {
            return Err(Error::InvalidState(format!(
                "log append out of order: record index {} but next is {}",
                record.index,
                self.next_index()
            )));
        }
        self.records.push(record);
        Ok(())
    }

    /// The record at `index`, if retained.
    pub fn get(&self, index: u64) -> Option<&LogRecord> {
        let i = index.checked_sub(self.first_index)?;
        self.records.get(usize::try_from(i).ok()?)
    }

    /// Records with index `>= from`, in order.
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &LogRecord> {
        let skip = from
            .saturating_sub(self.first_index)
            .min(self.records.len() as u64) as usize;
        self.records.iter().skip(skip)
    }

    /// Drops every record with index `<= through` (snapshot compaction).
    pub fn compact_through(&mut self, through: u64) {
        if through < self.first_index {
            return;
        }
        let drop = (through - self.first_index + 1).min(self.records.len() as u64) as usize;
        self.records.drain(..drop);
        self.first_index += drop as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(index: u64, op: ReplicatedOp) -> LogRecord {
        LogRecord {
            origin: ControllerId(2),
            epoch: 3,
            index,
            op,
        }
    }

    const OPS: [ReplicatedOp; 3] = [
        ReplicatedOp::Attach {
            imsi: UeImsi(7),
            bs: BaseStationId(11),
            ue_id: UeId(4),
            since: SimTime(99),
            permanent_ip: Ipv4Addr::new(100, 64, 1, 2),
        },
        ReplicatedOp::Detach {
            imsi: UeImsi(7),
            since: SimTime(99),
        },
        ReplicatedOp::PathInstall {
            bs: BaseStationId(11),
            clause: ClauseId(5),
            tag: PolicyTag(300),
            port: PortNo(1),
        },
    ];

    #[test]
    fn records_round_trip() {
        for (i, op) in OPS.iter().enumerate() {
            let r = rec(i as u64 + 1, *op);
            let buf = r.encode();
            assert_eq!(LogRecord::decode(&buf).unwrap(), r);
        }
    }

    #[test]
    fn malformed_records_are_rejected_not_panicking() {
        let buf = rec(1, OPS[0]).encode();
        for cut in 0..buf.len() {
            assert!(
                LogRecord::decode(&buf[..cut]).is_err(),
                "prefix of {cut} bytes must be malformed"
            );
        }
        // trailing garbage
        let mut long = buf.clone();
        long.push(0);
        assert!(LogRecord::decode(&long).is_err());
        // unknown op tag
        let mut bad = buf;
        bad[20] = 0xEE;
        assert!(LogRecord::decode(&bad).is_err());
    }

    #[test]
    fn log_enforces_sequential_indexes_and_compacts() {
        let mut log = ReplicationLog::new();
        assert_eq!(log.next_index(), 1);
        log.append(rec(1, OPS[0])).unwrap();
        log.append(rec(2, OPS[1])).unwrap();
        assert!(log.append(rec(4, OPS[2])).is_err(), "gap rejected");
        assert!(log.append(rec(2, OPS[2])).is_err(), "duplicate rejected");
        log.append(rec(3, OPS[2])).unwrap();
        assert_eq!(log.last_index(), 3);
        assert_eq!(log.get(2).unwrap().op, OPS[1]);
        assert_eq!(log.iter_from(2).count(), 2);

        log.compact_through(2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(2), None, "compacted away");
        assert_eq!(log.get(3).unwrap().op, OPS[2]);
        assert_eq!(log.next_index(), 4, "indexes keep counting");
    }
}
