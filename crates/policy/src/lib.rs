//! The SoftCell service-policy language (paper §2.2).
//!
//! A **service policy** is a prioritized list of clauses; each clause has
//! a *predicate* (a boolean expression over subscriber attributes and
//! application types) and a *service action* (an ordered middlebox chain
//! plus QoS and access control). The controller — never the switches —
//! resolves these high-level clauses; the data plane sees only tags.
//!
//! * [`attributes`] — subscriber attributes: provider, billing plan,
//!   device type, roaming, usage cap...
//! * [`application`] — application types and the port-signature
//!   classifier that recognizes them in traffic.
//! * [`predicate`] — the boolean predicate AST and its evaluator.
//! * [`clause`] — clauses, actions, QoS classes, and [`ServicePolicy`]
//!   with highest-priority-wins matching, including the paper's Table 1
//!   as a ready-made example.
//! * [`classifier`] — the per-UE **packet classifiers** the controller
//!   computes and local agents cache (§4.2): the policy specialized to
//!   one subscriber, keyed by flow header fields.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod application;
pub mod attributes;
pub mod classifier;
pub mod clause;
pub mod predicate;

pub use application::{AppClassifier, ApplicationType};
pub use attributes::{BillingPlan, DeviceType, Provider, SubscriberAttributes};
pub use classifier::{ClassifierEntry, UeClassifier};
pub use clause::{AccessControl, Clause, ClauseId, QosClass, ServiceAction, ServicePolicy};
pub use predicate::Predicate;
