//! Subscriber attributes.
//!
//! "Typical subscriber attributes include the cell-phone model or the M2M
//! device type, the operating-system version, the billing plan, the
//! options for parental controls, whether the total traffic exceeds a
//! usage cap, or whether a user is roaming." (paper §1). These are the
//! *mostly static* facts the controller holds per subscriber and feeds to
//! predicate evaluation; they are never visible to switches.

use serde::{Deserialize, Serialize};
use std::fmt;

use softcell_types::UeImsi;

/// The carrier a subscriber belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Provider {
    /// Our own subscriber.
    Home,
    /// A roaming partner's subscriber (Table 1: carrier B), by partner id.
    Partner(u16),
    /// Any other carrier, by id.
    Foreign(u16),
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provider::Home => write!(f, "home"),
            Provider::Partner(id) => write!(f, "partner-{id}"),
            Provider::Foreign(id) => write!(f, "foreign-{id}"),
        }
    }
}

/// Billing plan tiers (Table 1 uses "silver").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BillingPlan {
    /// Premium tier.
    Gold,
    /// Mid tier.
    Silver,
    /// Entry tier.
    Bronze,
    /// Pay-as-you-go.
    Prepaid,
    /// Machine-to-machine contract.
    M2m,
}

/// Coarse device classes (paper §1 motivates M2M fleets, smart meters,
/// old phones needing echo cancellation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DeviceType {
    /// A modern smartphone.
    Smartphone,
    /// A tablet.
    Tablet,
    /// An older feature phone (Table-1-era echo-cancellation candidates).
    FeaturePhone,
    /// An M2M smart meter.
    M2mMeter,
    /// An M2M fleet tracker (Table 1 clause 5).
    M2mFleetTracker,
}

/// Everything the controller knows about one subscriber.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SubscriberAttributes {
    /// Permanent subscriber identity.
    pub imsi: UeImsi,
    /// Owning carrier.
    pub provider: Provider,
    /// Billing plan.
    pub plan: BillingPlan,
    /// Device class.
    pub device: DeviceType,
    /// Device OS major version (policies on "older phones").
    pub os_major: u8,
    /// Whether the subscriber is currently roaming.
    pub roaming: bool,
    /// Whether the subscriber exceeded their usage cap.
    pub over_cap: bool,
    /// Whether parental controls are enabled.
    pub parental_controls: bool,
}

impl SubscriberAttributes {
    /// A typical home smartphone subscriber — the baseline for tests and
    /// examples; override fields as needed.
    pub fn default_home(imsi: UeImsi) -> Self {
        SubscriberAttributes {
            imsi,
            provider: Provider::Home,
            plan: BillingPlan::Silver,
            device: DeviceType::Smartphone,
            os_major: 12,
            roaming: false,
            over_cap: false,
            parental_controls: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_home_is_home_silver() {
        let a = SubscriberAttributes::default_home(UeImsi(7));
        assert_eq!(a.provider, Provider::Home);
        assert_eq!(a.plan, BillingPlan::Silver);
        assert!(!a.roaming);
    }

    #[test]
    fn provider_display() {
        assert_eq!(Provider::Home.to_string(), "home");
        assert_eq!(Provider::Partner(2).to_string(), "partner-2");
        assert_eq!(Provider::Foreign(9).to_string(), "foreign-9");
    }
}
