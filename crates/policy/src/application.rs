//! Application types and traffic classification.
//!
//! Service policies predicate on *application types* — "web traffic (for
//! caching), video traffic (for transcoding), or specific applications
//! for which the developers pay the carrier" (paper §1). The controller
//! "handles low-level details like ... application identification"
//! (§2.2); here identification is a deterministic port/protocol signature
//! table, which is also how classifier entries are expressed to access
//! switches (§4.2 example matches on `dst_port=80`).

use serde::{Deserialize, Serialize};
use std::fmt;

use softcell_packet::Protocol;

/// Application classes a policy can name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ApplicationType {
    /// Web browsing (HTTP/HTTPS).
    Web,
    /// Real-time streaming video (RTSP/RTMP).
    StreamingVideo,
    /// Voice over IP (SIP signalling + media).
    Voip,
    /// DNS lookups.
    Dns,
    /// Email (SMTP/IMAP).
    Email,
    /// M2M fleet tracking (MQTT).
    FleetTracking,
    /// Anything unrecognized.
    Unknown,
}

impl ApplicationType {
    /// All application types, for exhaustive per-UE compilation.
    pub const ALL: [ApplicationType; 7] = [
        ApplicationType::Web,
        ApplicationType::StreamingVideo,
        ApplicationType::Voip,
        ApplicationType::Dns,
        ApplicationType::Email,
        ApplicationType::FleetTracking,
        ApplicationType::Unknown,
    ];
}

impl fmt::Display for ApplicationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ApplicationType::Web => "web",
            ApplicationType::StreamingVideo => "video",
            ApplicationType::Voip => "voip",
            ApplicationType::Dns => "dns",
            ApplicationType::Email => "email",
            ApplicationType::FleetTracking => "fleet-tracking",
            ApplicationType::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// One (protocol, destination port) signature.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PortSignature {
    /// Transport protocol.
    pub proto: Protocol,
    /// Well-known destination port.
    pub dst_port: u16,
}

/// Classifies flows into application types by port signature.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppClassifier {
    signatures: Vec<(PortSignature, ApplicationType)>,
}

impl Default for AppClassifier {
    fn default() -> Self {
        use ApplicationType::*;
        use Protocol::*;
        let table = [
            (Tcp, 80, Web),
            (Tcp, 443, Web),
            (Tcp, 8080, Web),
            (Tcp, 554, StreamingVideo),
            (Tcp, 1935, StreamingVideo),
            (Udp, 554, StreamingVideo),
            (Tcp, 5060, Voip),
            (Udp, 5060, Voip),
            (Udp, 5061, Voip),
            (Udp, 53, Dns),
            (Tcp, 53, Dns),
            (Tcp, 25, Email),
            (Tcp, 143, Email),
            (Tcp, 993, Email),
            (Tcp, 8883, FleetTracking),
            (Tcp, 1883, FleetTracking),
        ];
        AppClassifier {
            signatures: table
                .into_iter()
                .map(|(proto, dst_port, app)| (PortSignature { proto, dst_port }, app))
                .collect(),
        }
    }
}

impl AppClassifier {
    /// Classifies a flow by protocol and destination port.
    pub fn classify(&self, proto: Protocol, dst_port: u16) -> ApplicationType {
        self.signatures
            .iter()
            .find(|(sig, _)| sig.proto == proto && sig.dst_port == dst_port)
            .map(|(_, app)| *app)
            .unwrap_or(ApplicationType::Unknown)
    }

    /// All signatures mapping to a given application — used to compile a
    /// per-UE classifier entry into concrete port matches for the access
    /// switch.
    pub fn signatures_of(&self, app: ApplicationType) -> Vec<PortSignature> {
        self.signatures
            .iter()
            .filter(|(_, a)| *a == app)
            .map(|(sig, _)| *sig)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_known_ports() {
        let c = AppClassifier::default();
        assert_eq!(c.classify(Protocol::Tcp, 443), ApplicationType::Web);
        assert_eq!(c.classify(Protocol::Udp, 53), ApplicationType::Dns);
        assert_eq!(c.classify(Protocol::Udp, 5060), ApplicationType::Voip);
        assert_eq!(
            c.classify(Protocol::Tcp, 8883),
            ApplicationType::FleetTracking
        );
    }

    #[test]
    fn unknown_port_is_unknown() {
        let c = AppClassifier::default();
        assert_eq!(c.classify(Protocol::Tcp, 31337), ApplicationType::Unknown);
        // protocol matters: TCP 5061 is not in the table, UDP 5061 is
        assert_eq!(c.classify(Protocol::Tcp, 5061), ApplicationType::Unknown);
    }

    #[test]
    fn signatures_round_trip() {
        let c = AppClassifier::default();
        for app in ApplicationType::ALL {
            for sig in c.signatures_of(app) {
                assert_eq!(c.classify(sig.proto, sig.dst_port), app);
            }
        }
        assert!(c.signatures_of(ApplicationType::Unknown).is_empty());
    }

    #[test]
    fn all_is_exhaustive_and_distinct() {
        let set: std::collections::HashSet<_> = ApplicationType::ALL.iter().collect();
        assert_eq!(set.len(), ApplicationType::ALL.len());
    }
}
