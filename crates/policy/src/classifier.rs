//! Per-UE packet classifiers.
//!
//! "The packet classifiers are a UE-specific instantiation of the service
//! policy that matches on header fields and identifies the appropriate
//! policy tag" (paper §4.2). The controller computes a [`UeClassifier`]
//! when a UE attaches by *specializing* the policy to the subscriber's
//! attributes: attribute-only parts of every predicate are evaluated
//! away, leaving entries keyed by concrete `(protocol, dst_port)`
//! signatures — exactly the `match:dst_port=80, action:tag=2` form of the
//! paper's example. The local agent consults this table for every new
//! flow without touching the controller.

use serde::{Deserialize, Serialize};

use softcell_packet::Protocol;

use crate::application::{AppClassifier, ApplicationType};
use crate::attributes::SubscriberAttributes;
use crate::clause::{AccessControl, ClauseId, ServicePolicy};

/// One classifier entry: a concrete flow signature → clause binding.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ClassifierEntry {
    /// Transport protocol to match (`None` = any — catch-all entry).
    pub proto: Option<Protocol>,
    /// Destination port to match (`None` = any).
    pub dst_port: Option<u16>,
    /// The application type this signature identifies.
    pub app: ApplicationType,
    /// The clause that governs such flows.
    pub clause: ClauseId,
    /// Whether the clause allows or denies.
    pub access: AccessControl,
}

/// The policy specialized to one subscriber.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UeClassifier {
    entries: Vec<ClassifierEntry>,
    /// The clause for flows matching no signature (the `Unknown`
    /// application), if the policy has one for this subscriber.
    fallback: Option<(ClauseId, AccessControl)>,
}

impl UeClassifier {
    /// Compiles the policy for one subscriber by enumerating every
    /// application type the classifier can recognize and asking the
    /// policy which clause governs it.
    pub fn compile(
        policy: &ServicePolicy,
        apps: &AppClassifier,
        attrs: &SubscriberAttributes,
    ) -> UeClassifier {
        let mut entries = Vec::new();
        let mut fallback = None;
        for app in ApplicationType::ALL {
            let Some((clause_id, clause)) = policy.match_clause(attrs, app) else {
                continue;
            };
            if app == ApplicationType::Unknown {
                fallback = Some((clause_id, clause.action.access));
                continue;
            }
            for sig in apps.signatures_of(app) {
                entries.push(ClassifierEntry {
                    proto: Some(sig.proto),
                    dst_port: Some(sig.dst_port),
                    app,
                    clause: clause_id,
                    access: clause.action.access,
                });
            }
        }
        UeClassifier { entries, fallback }
    }

    /// Reassembles a classifier from its parts — the receive side of a
    /// wire transfer (`softcell-ctlchan` ships entries and fallback
    /// separately).
    pub fn from_parts(
        entries: Vec<ClassifierEntry>,
        fallback: Option<(ClauseId, AccessControl)>,
    ) -> UeClassifier {
        UeClassifier { entries, fallback }
    }

    /// Looks up the clause governing a flow.
    pub fn classify(&self, proto: Protocol, dst_port: u16) -> Option<ClassifierEntry> {
        self.entries
            .iter()
            .find(|e| e.proto == Some(proto) && e.dst_port == Some(dst_port))
            .copied()
            .or_else(|| {
                self.fallback.map(|(clause, access)| ClassifierEntry {
                    proto: None,
                    dst_port: None,
                    app: ApplicationType::Unknown,
                    clause,
                    access,
                })
            })
    }

    /// The signature entries (excluding the fallback).
    pub fn entries(&self) -> &[ClassifierEntry] {
        &self.entries
    }

    /// The fallback clause for unrecognized flows.
    pub fn fallback(&self) -> Option<(ClauseId, AccessControl)> {
        self.fallback
    }

    /// Distinct clauses this subscriber's traffic can map to — the set of
    /// policy paths the controller may need to instantiate for this UE.
    pub fn clauses_used(&self) -> Vec<ClauseId> {
        let mut ids: Vec<ClauseId> = self
            .entries
            .iter()
            .map(|e| e.clause)
            .chain(self.fallback.map(|(c, _)| c))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{DeviceType, Provider};
    use softcell_types::UeImsi;

    fn compile_for(attrs: &SubscriberAttributes) -> (ServicePolicy, UeClassifier) {
        let policy = ServicePolicy::example_carrier_a(1);
        let apps = AppClassifier::default();
        let c = UeClassifier::compile(&policy, &apps, attrs);
        (policy, c)
    }

    #[test]
    fn home_silver_video_routes_to_transcoder_clause() {
        let attrs = SubscriberAttributes::default_home(UeImsi(1));
        let (policy, c) = compile_for(&attrs);
        // RTSP video flow
        let e = c.classify(Protocol::Tcp, 554).unwrap();
        assert_eq!(e.app, ApplicationType::StreamingVideo);
        assert_eq!(policy.clause(e.clause).unwrap().priority, 4);
        // web flow falls to the catch-all firewall clause
        let e = c.classify(Protocol::Tcp, 443).unwrap();
        assert_eq!(policy.clause(e.clause).unwrap().priority, 1);
    }

    #[test]
    fn unknown_ports_hit_fallback() {
        let attrs = SubscriberAttributes::default_home(UeImsi(1));
        let (policy, c) = compile_for(&attrs);
        let e = c.classify(Protocol::Tcp, 31337).unwrap();
        assert_eq!(e.app, ApplicationType::Unknown);
        assert_eq!(policy.clause(e.clause).unwrap().priority, 1);
        assert!(e.proto.is_none() && e.dst_port.is_none());
    }

    #[test]
    fn foreign_subscriber_is_denied_everywhere() {
        let mut attrs = SubscriberAttributes::default_home(UeImsi(2));
        attrs.provider = Provider::Foreign(3);
        let (_, c) = compile_for(&attrs);
        for e in c.entries() {
            assert_eq!(e.access, AccessControl::Deny);
        }
        assert_eq!(c.fallback().unwrap().1, AccessControl::Deny);
    }

    #[test]
    fn partner_subscriber_same_clause_for_all_apps() {
        let mut attrs = SubscriberAttributes::default_home(UeImsi(3));
        attrs.provider = Provider::Partner(1);
        let (policy, c) = compile_for(&attrs);
        let used = c.clauses_used();
        assert_eq!(used.len(), 1, "partner B hits only the priority-6 clause");
        assert_eq!(policy.clause(used[0]).unwrap().priority, 6);
    }

    #[test]
    fn fleet_tracker_mqtt_gets_its_clause() {
        let mut attrs = SubscriberAttributes::default_home(UeImsi(4));
        attrs.device = DeviceType::M2mFleetTracker;
        let (policy, c) = compile_for(&attrs);
        let e = c.classify(Protocol::Tcp, 8883).unwrap();
        assert_eq!(policy.clause(e.clause).unwrap().priority, 2);
    }

    #[test]
    fn clauses_used_is_sorted_dedup() {
        let attrs = SubscriberAttributes::default_home(UeImsi(5));
        let (_, c) = compile_for(&attrs);
        let used = c.clauses_used();
        let mut sorted = used.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(used, sorted);
        assert!(used.len() >= 3, "video, voip and catch-all at least");
    }

    #[test]
    fn empty_policy_compiles_to_empty_classifier() {
        let attrs = SubscriberAttributes::default_home(UeImsi(6));
        let c = UeClassifier::compile(&ServicePolicy::new(), &AppClassifier::default(), &attrs);
        assert!(c.entries().is_empty());
        assert!(c.fallback().is_none());
        assert!(c.classify(Protocol::Tcp, 80).is_none());
    }
}
