//! Clauses, service actions and the prioritized service policy.
//!
//! "An action consists of a sequence of middleboxes, along with
//! quality-of-service (QoS) and access-control specifications. ... The
//! action does not indicate a specific instance of each middlebox" (paper
//! §2.2). [`ServicePolicy::example_carrier_a`] reproduces the paper's
//! Table 1 verbatim.

use serde::{Deserialize, Serialize};
use std::fmt;

use softcell_types::{Error, MiddleboxKind, Result};

use crate::application::ApplicationType;
use crate::attributes::{BillingPlan, Provider, SubscriberAttributes};
use crate::predicate::Predicate;

/// Index of a clause within its policy (stable across lookups).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ClauseId(pub u16);

/// Allow or deny traffic (access-control part of an action).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccessControl {
    /// Forward through the middlebox chain.
    Allow,
    /// Drop at the access edge (Table 1 clause 2).
    Deny,
}

/// A QoS specification: DSCP marking and a scheduling priority hint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct QosClass {
    /// DSCP codepoint to mark (e.g. 46 = expedited forwarding).
    pub dscp: u8,
    /// Abstract scheduling priority (higher = more urgent).
    pub priority: u8,
}

impl QosClass {
    /// Low-latency expedited forwarding (Table 1 clause 5, fleet
    /// tracking).
    pub const LOW_LATENCY: QosClass = QosClass {
        dscp: 46,
        priority: 7,
    };
    /// Default best-effort.
    pub const BEST_EFFORT: QosClass = QosClass {
        dscp: 0,
        priority: 0,
    };
}

/// The action half of a clause.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ServiceAction {
    /// Ordered middlebox *kinds* to traverse (instance selection is the
    /// controller's job).
    pub chain: Vec<MiddleboxKind>,
    /// Optional QoS marking.
    pub qos: Option<QosClass>,
    /// Allow or deny.
    pub access: AccessControl,
}

impl ServiceAction {
    /// An allow action through the given chain.
    pub fn through(chain: Vec<MiddleboxKind>) -> Self {
        ServiceAction {
            chain,
            qos: None,
            access: AccessControl::Allow,
        }
    }

    /// A deny action.
    pub fn deny() -> Self {
        ServiceAction {
            chain: Vec::new(),
            qos: None,
            access: AccessControl::Deny,
        }
    }

    /// Adds a QoS class.
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = Some(qos);
        self
    }
}

/// One prioritized clause.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Clause {
    /// Priority; higher wins among matching predicates.
    pub priority: u16,
    /// The predicate.
    pub predicate: Predicate,
    /// The action.
    pub action: ServiceAction,
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let chain: Vec<String> = self.action.chain.iter().map(|m| m.to_string()).collect();
        write!(
            f,
            "[{}] {} -> {}{}",
            self.priority,
            self.predicate,
            match self.action.access {
                AccessControl::Allow if chain.is_empty() => "allow".to_string(),
                AccessControl::Allow => chain.join(" > "),
                AccessControl::Deny => "deny".to_string(),
            },
            if self.action.qos.is_some() {
                " +qos"
            } else {
                ""
            }
        )
    }
}

/// A complete service policy: clauses sorted by descending priority.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServicePolicy {
    clauses: Vec<Clause>,
}

impl ServicePolicy {
    /// An empty policy.
    pub fn new() -> Self {
        ServicePolicy::default()
    }

    /// Builds a policy from clauses, sorting by descending priority.
    /// Duplicate priorities are rejected — the paper uses priority to
    /// "disambiguate overlapping predicates", which requires a total
    /// order.
    pub fn from_clauses(mut clauses: Vec<Clause>) -> Result<Self> {
        clauses.sort_by_key(|c| std::cmp::Reverse(c.priority));
        for w in clauses.windows(2) {
            if w[0].priority == w[1].priority {
                return Err(Error::Config(format!(
                    "duplicate clause priority {}",
                    w[0].priority
                )));
            }
        }
        Ok(ServicePolicy { clauses })
    }

    /// Appends a clause (re-sorting).
    pub fn add(&mut self, clause: Clause) -> Result<()> {
        if self.clauses.iter().any(|c| c.priority == clause.priority) {
            return Err(Error::Config(format!(
                "duplicate clause priority {}",
                clause.priority
            )));
        }
        self.clauses.push(clause);
        self.clauses.sort_by_key(|c| std::cmp::Reverse(c.priority));
        Ok(())
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the policy is empty.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Clauses in descending priority order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// A clause by id.
    pub fn clause(&self, id: ClauseId) -> Option<&Clause> {
        self.clauses.get(id.0 as usize)
    }

    /// The highest-priority clause matching (attributes, application).
    /// "The network forwards traffic using the highest-priority clause
    /// with a matching predicate" (§2.2).
    pub fn match_clause(
        &self,
        attrs: &SubscriberAttributes,
        app: ApplicationType,
    ) -> Option<(ClauseId, &Clause)> {
        self.clauses
            .iter()
            .enumerate()
            .find(|(_, c)| c.predicate.eval(attrs, app))
            .map(|(i, c)| (ClauseId(i as u16), c))
    }

    /// The paper's Table 1 — carrier A's example policy:
    ///
    /// | prio | predicate | action |
    /// |---|---|---|
    /// | 6 | provider = B | firewall |
    /// | 5 | provider ∉ {A, B} | deny |
    /// | 4 | plan = silver & app = video | firewall > transcoder |
    /// | 3 | app = VoIP | firewall > echo-canceller |
    /// | 2 | device = fleet tracker | firewall, low-latency QoS |
    /// | 1 | * | firewall |
    pub fn example_carrier_a(partner_b: u16) -> ServicePolicy {
        use MiddleboxKind::*;
        let not_a_or_b =
            Predicate::NotHomeProvider.and(Predicate::Provider(Provider::Partner(partner_b)).not());
        ServicePolicy::from_clauses(vec![
            Clause {
                priority: 6,
                predicate: Predicate::Provider(Provider::Partner(partner_b)),
                action: ServiceAction::through(vec![Firewall]),
            },
            Clause {
                priority: 5,
                predicate: not_a_or_b,
                action: ServiceAction::deny(),
            },
            Clause {
                priority: 4,
                predicate: Predicate::Plan(BillingPlan::Silver)
                    .and(Predicate::App(ApplicationType::StreamingVideo)),
                action: ServiceAction::through(vec![Firewall, Transcoder]),
            },
            Clause {
                priority: 3,
                predicate: Predicate::App(ApplicationType::Voip),
                action: ServiceAction::through(vec![Firewall, EchoCanceller]),
            },
            Clause {
                priority: 2,
                predicate: Predicate::Device(crate::attributes::DeviceType::M2mFleetTracker),
                action: ServiceAction::through(vec![Firewall]).with_qos(QosClass::LOW_LATENCY),
            },
            Clause {
                priority: 1,
                predicate: Predicate::Any,
                action: ServiceAction::through(vec![Firewall]),
            },
        ])
        .expect("example policy has distinct priorities")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::DeviceType;
    use softcell_types::UeImsi;

    fn home() -> SubscriberAttributes {
        SubscriberAttributes::default_home(UeImsi(1))
    }

    #[test]
    fn table1_clause_resolution() {
        let p = ServicePolicy::example_carrier_a(1);
        assert_eq!(p.len(), 6);

        // A silver home subscriber watching video → firewall + transcoder
        let (_, c) = p
            .match_clause(&home(), ApplicationType::StreamingVideo)
            .unwrap();
        assert_eq!(
            c.action.chain,
            vec![MiddleboxKind::Firewall, MiddleboxKind::Transcoder]
        );

        // same subscriber browsing web → catch-all firewall
        let (_, c) = p.match_clause(&home(), ApplicationType::Web).unwrap();
        assert_eq!(c.action.chain, vec![MiddleboxKind::Firewall]);

        // VoIP → echo canceller
        let (_, c) = p.match_clause(&home(), ApplicationType::Voip).unwrap();
        assert_eq!(
            c.action.chain,
            vec![MiddleboxKind::Firewall, MiddleboxKind::EchoCanceller]
        );
    }

    #[test]
    fn table1_partner_and_foreign() {
        let p = ServicePolicy::example_carrier_a(1);
        let mut partner = home();
        partner.provider = Provider::Partner(1);
        // everything from partner B hits the priority-6 firewall clause,
        // even video
        let (_, c) = p
            .match_clause(&partner, ApplicationType::StreamingVideo)
            .unwrap();
        assert_eq!(c.priority, 6);
        assert_eq!(c.action.chain, vec![MiddleboxKind::Firewall]);

        let mut foreign = home();
        foreign.provider = Provider::Foreign(9);
        let (_, c) = p.match_clause(&foreign, ApplicationType::Web).unwrap();
        assert_eq!(c.action.access, AccessControl::Deny);
    }

    #[test]
    fn table1_fleet_tracker_gets_qos() {
        let p = ServicePolicy::example_carrier_a(1);
        let mut m2m = home();
        m2m.device = DeviceType::M2mFleetTracker;
        m2m.plan = BillingPlan::M2m;
        let (_, c) = p
            .match_clause(&m2m, ApplicationType::FleetTracking)
            .unwrap();
        assert_eq!(c.action.qos, Some(QosClass::LOW_LATENCY));
    }

    #[test]
    fn priority_disambiguates_overlap() {
        // silver video matches both clause 4 and the catch-all; 4 wins
        let p = ServicePolicy::example_carrier_a(1);
        let (id, c) = p
            .match_clause(&home(), ApplicationType::StreamingVideo)
            .unwrap();
        assert_eq!(c.priority, 4);
        assert_eq!(p.clause(id).unwrap().priority, 4);
    }

    #[test]
    fn duplicate_priorities_rejected() {
        let c = Clause {
            priority: 1,
            predicate: Predicate::Any,
            action: ServiceAction::through(vec![]),
        };
        assert!(ServicePolicy::from_clauses(vec![c.clone(), c.clone()]).is_err());
        let mut p = ServicePolicy::new();
        p.add(c.clone()).unwrap();
        assert!(p.add(c).is_err());
    }

    #[test]
    fn empty_policy_matches_nothing() {
        let p = ServicePolicy::new();
        assert!(p.is_empty());
        assert!(p.match_clause(&home(), ApplicationType::Web).is_none());
    }

    #[test]
    fn clause_display() {
        let p = ServicePolicy::example_carrier_a(1);
        let shown = p.clauses()[0].to_string();
        assert!(shown.contains("provider=partner-1"));
        assert!(shown.contains("firewall"));
        assert!(p.clauses()[1].to_string().contains("deny"));
    }
}
