//! Predicates: boolean expressions over attributes and applications.
//!
//! "A predicate is a boolean expression on subscriber attributes and
//! application types" (paper §2.2). The AST below closes that definition
//! under negation, conjunction and disjunction; evaluation takes the
//! subscriber's attributes and the flow's application type.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::application::ApplicationType;
use crate::attributes::{BillingPlan, DeviceType, Provider, SubscriberAttributes};

/// A boolean predicate over (subscriber attributes, application type).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (catch-all clauses).
    Any,
    /// Subscriber belongs to this provider.
    Provider(Provider),
    /// Subscriber belongs to *any* provider other than ours (Table 1
    /// clause 2 shape: "subscribers from all other carriers").
    NotHomeProvider,
    /// Subscriber is on this billing plan.
    Plan(BillingPlan),
    /// Subscriber's device class.
    Device(DeviceType),
    /// Device OS major version strictly below a threshold ("older
    /// phones", §1).
    OsOlderThan(u8),
    /// Subscriber is roaming.
    Roaming,
    /// Subscriber exceeded their usage cap.
    OverCap,
    /// Parental controls are enabled.
    ParentalControls,
    /// Flow is of this application type.
    App(ApplicationType),
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction (empty = true).
    And(Vec<Predicate>),
    /// Disjunction (empty = false).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Evaluates against a subscriber and a flow's application type.
    pub fn eval(&self, attrs: &SubscriberAttributes, app: ApplicationType) -> bool {
        match self {
            Predicate::Any => true,
            Predicate::Provider(p) => attrs.provider == *p,
            Predicate::NotHomeProvider => attrs.provider != Provider::Home,
            Predicate::Plan(p) => attrs.plan == *p,
            Predicate::Device(d) => attrs.device == *d,
            Predicate::OsOlderThan(v) => attrs.os_major < *v,
            Predicate::Roaming => attrs.roaming,
            Predicate::OverCap => attrs.over_cap,
            Predicate::ParentalControls => attrs.parental_controls,
            Predicate::App(a) => app == *a,
            Predicate::Not(p) => !p.eval(attrs, app),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(attrs, app)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(attrs, app)),
        }
    }

    /// Whether the predicate's outcome depends on the application type.
    /// Attribute-only predicates let the local agent install one
    /// catch-all classifier entry instead of one per application.
    pub fn mentions_app(&self) -> bool {
        match self {
            Predicate::App(_) => true,
            Predicate::Not(p) => p.mentions_app(),
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().any(|p| p.mentions_app()),
            _ => false,
        }
    }

    /// Convenience: `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        match self {
            Predicate::And(mut ps) => {
                ps.push(other);
                Predicate::And(ps)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Convenience: `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        match self {
            Predicate::Or(mut ps) => {
                ps.push(other);
                Predicate::Or(ps)
            }
            p => Predicate::Or(vec![p, other]),
        }
    }

    /// Convenience: `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Any => write!(f, "*"),
            Predicate::Provider(p) => write!(f, "provider={p}"),
            Predicate::NotHomeProvider => write!(f, "provider!=home"),
            Predicate::Plan(p) => write!(f, "plan={p:?}"),
            Predicate::Device(d) => write!(f, "device={d:?}"),
            Predicate::OsOlderThan(v) => write!(f, "os<{v}"),
            Predicate::Roaming => write!(f, "roaming"),
            Predicate::OverCap => write!(f, "over-cap"),
            Predicate::ParentalControls => write!(f, "parental-controls"),
            Predicate::App(a) => write!(f, "app={a}"),
            Predicate::Not(p) => write!(f, "!({p})"),
            Predicate::And(ps) => {
                let s: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", s.join(" & "))
            }
            Predicate::Or(ps) => {
                let s: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", s.join(" | "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_types::UeImsi;

    fn home() -> SubscriberAttributes {
        SubscriberAttributes::default_home(UeImsi(1))
    }

    #[test]
    fn atomic_predicates() {
        let a = home();
        assert!(Predicate::Any.eval(&a, ApplicationType::Unknown));
        assert!(Predicate::Provider(Provider::Home).eval(&a, ApplicationType::Web));
        assert!(!Predicate::NotHomeProvider.eval(&a, ApplicationType::Web));
        assert!(Predicate::Plan(BillingPlan::Silver).eval(&a, ApplicationType::Web));
        assert!(!Predicate::Roaming.eval(&a, ApplicationType::Web));
        assert!(Predicate::App(ApplicationType::Web).eval(&a, ApplicationType::Web));
        assert!(!Predicate::App(ApplicationType::Web).eval(&a, ApplicationType::Dns));
        assert!(Predicate::OsOlderThan(13).eval(&a, ApplicationType::Web));
        assert!(!Predicate::OsOlderThan(12).eval(&a, ApplicationType::Web));
    }

    #[test]
    fn partner_is_not_home() {
        let mut b = home();
        b.provider = Provider::Partner(1);
        assert!(Predicate::NotHomeProvider.eval(&b, ApplicationType::Web));
        assert!(Predicate::Provider(Provider::Partner(1)).eval(&b, ApplicationType::Web));
        assert!(!Predicate::Provider(Provider::Partner(2)).eval(&b, ApplicationType::Web));
    }

    #[test]
    fn boolean_combinators() {
        let a = home();
        let silver_video = Predicate::Plan(BillingPlan::Silver)
            .and(Predicate::App(ApplicationType::StreamingVideo));
        assert!(silver_video.eval(&a, ApplicationType::StreamingVideo));
        assert!(!silver_video.eval(&a, ApplicationType::Web));

        let not_web = Predicate::App(ApplicationType::Web).not();
        assert!(not_web.eval(&a, ApplicationType::Dns));

        let either = Predicate::Roaming.or(Predicate::OverCap);
        assert!(!either.eval(&a, ApplicationType::Web));
        let mut capped = a;
        capped.over_cap = true;
        assert!(either.eval(&capped, ApplicationType::Web));
    }

    #[test]
    fn empty_and_or_identities() {
        let a = home();
        assert!(Predicate::And(vec![]).eval(&a, ApplicationType::Web));
        assert!(!Predicate::Or(vec![]).eval(&a, ApplicationType::Web));
    }

    #[test]
    fn mentions_app_detection() {
        assert!(!Predicate::Plan(BillingPlan::Gold).mentions_app());
        assert!(Predicate::App(ApplicationType::Voip).mentions_app());
        assert!(Predicate::Plan(BillingPlan::Gold)
            .and(Predicate::App(ApplicationType::Voip))
            .mentions_app());
        assert!(Predicate::App(ApplicationType::Voip).not().mentions_app());
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::Plan(BillingPlan::Silver)
            .and(Predicate::App(ApplicationType::StreamingVideo));
        assert_eq!(p.to_string(), "(plan=Silver & app=video)");
    }
}
