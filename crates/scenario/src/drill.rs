//! The `kill -9` replica drill the [`crate::OverlayKind::ControllerKill`]
//! overlay runs mid-campaign.
//!
//! A compact version of the `tests/recovery.rs` gate: a 3-controller
//! cluster absorbs an attach wave and a cross-region handoff ring, seat
//! 0 is killed with no teardown at a quiesce point (every reply is
//! commit-gated, so the dead leader's snapshot is the recovery oracle),
//! survivors fail over, the orphaned agent re-homes, the storm resumes,
//! and both survivors must converge **byte-for-byte**. Any divergence
//! becomes a campaign [`crate::Violation`].

use std::time::Duration;

use softcell_controller::agent::LocalAgent;
use softcell_controller::wire::ChannelController;
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_replica::{rehome_agent, Cluster, Link, ReplicaStore};
use softcell_types::{
    AddressingScheme, BaseStationId, ControllerId, Membership, PortEmbedding, PortNo, SimTime,
    UeImsi,
};

const UES: u64 = 9;

/// What the drill observed.
pub(crate) struct DrillOutcome {
    /// Survivors matched the oracle and each other byte-for-byte.
    pub converged: bool,
    /// Human-readable account (first divergence, or a success note).
    pub detail: String,
}

struct Cell {
    agent: LocalAgent,
    ctl: ChannelController<Link>,
}

/// One base station per seat, each led by that seat under `view`.
fn stations(view: &Membership, seats: usize) -> Option<Vec<BaseStationId>> {
    (0..seats as u32)
        .map(|seat| {
            (0..1024u32)
                .map(BaseStationId)
                .find(|bs| view.leader_of_station(*bs) == Some(ControllerId(seat)))
        })
        .collect()
}

fn handoff(
    cells: &mut [Cell],
    from: usize,
    to: usize,
    imsi: UeImsi,
    now: SimTime,
) -> Result<(), String> {
    cells[from]
        .agent
        .evict(imsi)
        .map_err(|e| format!("evict {imsi} at seat {from}: {e}"))?;
    let c = &mut cells[to];
    c.agent
        .handle_attach(imsi, &mut c.ctl, now)
        .map_err(|e| format!("re-attach {imsi} at seat {to}: {e}"))?;
    Ok(())
}

/// Runs the drill. Never panics — failures come back in the outcome.
pub(crate) fn controller_kill_drill(seed: u64) -> DrillOutcome {
    match drill_inner(seed) {
        Ok(detail) => DrillOutcome {
            converged: true,
            detail,
        },
        Err(detail) => DrillOutcome {
            converged: false,
            detail,
        },
    }
}

fn drill_inner(_seed: u64) -> Result<String, String> {
    let subs: Vec<SubscriberAttributes> = (0..UES)
        .map(|i| SubscriberAttributes::default_home(UeImsi(i)))
        .collect();
    let cluster = Cluster::start(
        3,
        2,
        &ServicePolicy::example_carrier_a(1),
        &subs,
        Duration::from_millis(400),
    )
    .map_err(|e| format!("cluster start: {e}"))?;
    let view = cluster
        .membership()
        .map_err(|e| format!("membership: {e}"))?;
    let bss = stations(&view, 3).ok_or("some seat leads no station")?;
    let mut cells: Vec<Cell> = Vec::new();
    for &bs in &bss {
        cells.push(Cell {
            agent: LocalAgent::new(
                bs,
                PortNo(2),
                AddressingScheme::default_scheme(),
                PortEmbedding::default_embedding(),
            ),
            ctl: cluster
                .connect_agent(bs)
                .map_err(|e| format!("connect agent at {bs}: {e}"))?,
        });
    }

    // Storm, act one: every UE attaches, spread across the regions.
    let mut clock = 0u64;
    for i in 0..UES {
        clock += 1;
        let c = &mut cells[(i % 3) as usize];
        c.agent
            .handle_attach(UeImsi(i), &mut c.ctl, SimTime(clock))
            .map_err(|e| format!("attach {i}: {e}"))?;
    }
    // Act two: a cross-region handoff ring.
    for i in 0..UES {
        clock += 1;
        let from = (i % 3) as usize;
        handoff(&mut cells, from, (from + 1) % 3, UeImsi(i), SimTime(clock))?;
    }

    // Quiesce point (replies are commit-gated): freeze the oracle, kill.
    let oracle = cluster.node(0).snapshot_bytes();
    cluster.kill(0);
    let after = cluster
        .fail_over(&[ControllerId(0)])
        .map_err(|e| format!("fail-over: {e}"))?;
    if cluster.node(1).snapshot_bytes() != oracle {
        return Err("seat 1 diverged from the pre-kill oracle".into());
    }
    if cluster.node(2).snapshot_bytes() != oracle {
        return Err("seat 2 diverged from the pre-kill oracle".into());
    }

    // The orphaned agent re-homes to the deterministic successor.
    clock += 1;
    let successor = after
        .leader_of_station(bss[0])
        .ok_or("no successor leads the orphaned region")?;
    let cell0 = &mut cells[0];
    let new_home = rehome_agent(&cluster, &mut cell0.ctl, &mut cell0.agent, SimTime(clock))
        .map_err(|e| format!("re-home: {e}"))?;
    if new_home != successor {
        return Err(format!(
            "agent re-homed to {new_home:?}, deterministic successor is {successor:?}"
        ));
    }

    // Act three: the storm resumes across the shrunken cluster.
    for i in 0..UES {
        clock += 1;
        let from = ((i % 3) as usize + 1) % 3;
        handoff(&mut cells, from, (from + 1) % 3, UeImsi(i), SimTime(clock))?;
    }
    let s1 = cluster.node(1).snapshot_bytes();
    let s2 = cluster.node(2).snapshot_bytes();
    if s1 != s2 {
        return Err("survivors failed to converge after the resumed storm".into());
    }
    let store = ReplicaStore::restore(&s1).map_err(|e| format!("snapshot parse: {e}"))?;
    if store.ue_count() != UES as usize {
        return Err(format!(
            "survivor store holds {} UEs, expected {UES}",
            store.ue_count()
        ));
    }
    Ok(format!(
        "kill -9 seat 0 at epoch {}: survivors byte-identical, {} UEs re-converged",
        after.epoch(),
        UES
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_converges_standalone() {
        let out = controller_kill_drill(7);
        assert!(out.converged, "{}", out.detail);
    }
}
