//! Metro-at-scale scenario campaigns — "a day in the life of a million
//! UEs" as a regression-gated matrix (ROADMAP item 4; DESIGN.md §14).
//!
//! The paper's evaluation (§6.1) is sized by a real metro trace: ~1,500
//! base stations, ~1M devices, 99.999-pct 214 attaches/s and 280
//! handoffs/s. The pieces that reproduce those numbers already exist in
//! this workspace — the diurnal workload model, the end-to-end
//! simulator, fault injection, replication, telemetry — but each was
//! exercised in isolated one-off tests. This crate composes them into a
//! deterministic, time-compressed discrete-event campaign:
//!
//! * a **micro tier** (the *cohort*) of up to a few thousand UEs driven
//!   through the real stack — `sim::world` packet walks, agent
//!   classification, Algorithm-1 paths, mobility tunnels — along a
//!   diurnally-warped [`softcell_workload::EventStream`];
//! * a **macro tier** accounting statistically for the rest of the
//!   `--ues` population (seeded Poisson per slice against the paper's
//!   published peak rates), so a 1M-UE day is *modeled* at full scale
//!   while the packet-level fidelity rides the cohort;
//! * composable **overlays** ([`OverlayKind`]): commuter handoff storms
//!   along train lines, HyCell-style base-station sleep/wake, gateway
//!   failure + §3.2 reroute, `kill -9` of a replicated controller
//!   mid-storm, and flash crowds at a single cell;
//! * **continuously checked invariants** (every virtual
//!   [`CampaignConfig::slice`]): attached-population parity between the
//!   driver's ledger and the controller, policy consistency via the
//!   incremental [`softcell_sim::ConsistencyAuditor`], zero tag/tunnel
//!   residue once mobility quiesces, and microflow-table occupancy
//!   bounds — plus a byte-exact residue check against the warmup
//!   baseline at end of day.
//!
//! The first violating event is recorded as a [`Violation`] carrying
//! the scenario name, seed and virtual timestamp — the replay
//! coordinates: re-running the same [`CampaignConfig`] reproduces the
//! run byte-for-byte (see the seed-stability contract in
//! `crates/workload/src/lib.rs`). The run artifact is a per-scenario
//! telemetry/JSON report ([`ScenarioReport`]).
//!
//! Drive it from the command line with the `metro_campaign` binary in
//! `softcell-bench` (`--scenario`/`--ues`/`--compress`), or
//! programmatically via [`CampaignConfig::run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
mod drill;
pub mod invariants;
pub mod overlay;
pub mod report;

pub use campaign::{CampaignConfig, ScenarioOutcome};
pub use invariants::Violation;
pub use overlay::{overlays_for, OverlayKind, SCENARIOS};
pub use report::{CampaignReport, ScenarioReport};
