//! Violation records — the campaign's replay coordinates.

use serde::Serialize;

/// One violated invariant, with everything needed to replay it.
///
/// Campaign runs are deterministic in their [`crate::CampaignConfig`]
/// (see the seed-stability contract in `crates/workload/src/lib.rs`),
/// so `(scenario, seed, virtual_time_us)` pin-points the failure: rerun
/// the same scenario with the same seed and the same event fires at the
/// same virtual microsecond.
#[derive(Clone, Debug, Serialize)]
pub struct Violation {
    /// Scenario name (`diurnal`, `flash-crowd`, ...).
    pub scenario: String,
    /// Which invariant broke (`attached-parity`, `policy-consistency`,
    /// `mobility-residue`, `microflow-occupancy`, `event-application`,
    /// `replica-convergence`, `quiesce-residue`, ...).
    pub invariant: String,
    /// Virtual time of detection, microseconds since campaign start.
    pub virtual_time_us: u64,
    /// The campaign seed — replay key.
    pub seed: u64,
    /// The offending event or overlay action, as applied.
    pub event: String,
    /// What exactly was observed vs. expected.
    pub detail: String,
}

impl Violation {
    /// A one-line replay recipe for this violation.
    pub fn replay_coordinates(&self) -> String {
        format!(
            "replay: --scenario {} --seed {} (virtual t={} µs, event: {})",
            self.scenario, self.seed, self.virtual_time_us, self.event
        )
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} at t={}µs: {} ({})",
            self.scenario, self.invariant, self.virtual_time_us, self.detail, self.event
        )
    }
}
