//! The campaign driver: one simulated day, micro + macro tiers,
//! composable overlays, continuously checked invariants.
//!
//! See the crate docs for the model. The driver is deterministic in its
//! [`CampaignConfig`]: the trace, the overlay schedule, the macro-tier
//! Poisson draws and every tie-break derive from the config's seed
//! alone (the seed-stability contract in `crates/workload/src/lib.rs`),
//! so a [`Violation`]'s `(scenario, seed, virtual_time_us)` triple is a
//! complete replay recipe.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use softcell_packet::Protocol;
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_sim::{ConsistencyAuditor, MiddleboxTracker, SimWorld};
use softcell_telemetry::Registry;
use softcell_topology::{CellularParams, Topology};
use softcell_types::{BaseStationId, Error, Result, SimDuration, SimTime, UeId, UeImsi};
use softcell_workload::diurnal::DiurnalShape;
use softcell_workload::{EventKind, EventStream, EventStreamConfig, TraceEvent};

use crate::drill::controller_kill_drill;
use crate::invariants::Violation;
use crate::overlay::OverlayKind;
use crate::report::{
    MacroStats, MicroStats, OverlayStats, ProbeStats, QuiesceStats, ScenarioReport,
};

/// A fixed Internet endpoint for every campaign flow.
const INTERNET: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// Connections older than this are never replayed (compressed virtual
/// gaps dwarf the 30 s microflow idle timeout; a stale echo would
/// rightly fail).
const FRESH_WINDOW: SimDuration = SimDuration::from_secs(25);

/// Paper Fig. 6a: 99.999th-pct attach rate at 1M UEs, events/s.
const PEAK_ATTACHES_PER_S_AT_1M: f64 = 214.0;
/// Paper Fig. 6a: 99.999th-pct handoff rate at 1M UEs, events/s.
const PEAK_HANDOFFS_PER_S_AT_1M: f64 = 280.0;

/// The flow mix the micro tier and warmup both exercise (port, is-UDP);
/// mirrors the workload generator's application table.
const APP_PORTS: [(u16, bool); 7] = [
    (443, false),
    (80, false),
    (554, false),
    (5060, true),
    (53, true),
    (993, false),
    (8883, false),
];

/// At most this many violations are recorded per scenario (the first
/// one carries the replay coordinates; the rest are colour).
const MAX_VIOLATIONS: usize = 64;

/// One scenario run, fully specified.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Scenario name (reported, and part of the replay recipe).
    pub name: String,
    /// Fabric shape.
    pub topology: CellularParams,
    /// Modeled UE population (macro tier accounts for all of it).
    pub ues: u64,
    /// Cap on the cohort driven through the real stack.
    pub cohort_cap: u64,
    /// Virtual day length.
    pub virtual_day: SimDuration,
    /// Time compression: the dense source trace spans
    /// `virtual_day / compress` and is diurnally warped onto the day.
    pub compress: u64,
    /// Invariant-probe cadence (virtual time between slice boundaries).
    pub slice: SimDuration,
    /// Campaign seed — the replay key.
    pub seed: u64,
    /// Overlays stacked on the base diurnal cycle.
    pub overlays: Vec<OverlayKind>,
    /// Capture the final fabric dump in the outcome (determinism
    /// comparisons); the FNV digest is computed either way.
    pub capture_fabric_dump: bool,
}

/// What a scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The run artifact.
    pub report: ScenarioReport,
    /// Final fabric dump, when
    /// [`CampaignConfig::capture_fabric_dump`] was set.
    pub fabric_dump: Option<String>,
}

impl CampaignConfig {
    /// The metro-scale preset: the paper's `k = 2` pod fabric
    /// (20 stations), a 24 h virtual day compressed 288× (5 min of
    /// dense traffic warped over the day), probes every virtual minute.
    pub fn metro(name: &str, overlays: Vec<OverlayKind>) -> CampaignConfig {
        CampaignConfig {
            name: name.to_string(),
            // paper(2) with one extra middlebox kind: the carrier-A
            // policy chains firewall, transcoder AND echo-canceller,
            // so all three kinds must be deployed for every
            // application class to have a feasible path.
            topology: CellularParams {
                mb_kinds: 3,
                ..CellularParams::paper(2)
            },
            ues: 10_000,
            cohort_cap: 768,
            virtual_day: SimDuration::from_secs(86_400),
            compress: 288,
            slice: SimDuration::from_secs(60),
            seed: 2013,
            overlays,
            capture_fabric_dump: false,
        }
    }

    /// A reduced preset for tests: 4 stations, a one-hour virtual day,
    /// the whole kilo-UE population in the cohort.
    pub fn small(name: &str, overlays: Vec<OverlayKind>) -> CampaignConfig {
        CampaignConfig {
            name: name.to_string(),
            topology: CellularParams {
                k: 2,
                bs_per_cluster: 2,
                mb_kinds: 3,
                seed: 2013,
            },
            ues: 1_000,
            cohort_cap: 1_000,
            virtual_day: SimDuration::from_secs(3_600),
            compress: 60,
            slice: SimDuration::from_secs(30),
            seed: 2013,
            overlays,
            capture_fabric_dump: false,
        }
    }

    /// The metro preset for a named scenario (`None` if unknown).
    pub fn scenario(name: &str) -> Option<CampaignConfig> {
        Some(CampaignConfig::metro(
            name,
            crate::overlay::overlays_for(name)?,
        ))
    }

    /// Cohort actually driven through the stack.
    pub fn cohort(&self) -> u64 {
        self.ues.min(self.cohort_cap)
    }

    /// Runs the scenario to completion.
    pub fn run(&self) -> Result<ScenarioOutcome> {
        let wall = Instant::now();
        let topo = self.topology.build()?;
        let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));

        let cohort = self.cohort();
        let crowd = if self.overlays.contains(&OverlayKind::FlashCrowd) {
            (cohort / 4).min(256)
        } else {
            0
        };
        for imsi in 0..cohort + crowd + 2 {
            // cohort, crowd, ghost, warmup — all home subscribers, so
            // the catch-all allow clause guarantees no flow is denied.
            w.provision(SubscriberAttributes::default_home(UeImsi(imsi)));
        }

        let n = topo.base_stations().len() as u32;
        let day_us = self.virtual_day.as_micros().max(1);
        let mut d = Driver {
            cfg: self,
            n,
            day_us,
            crowd_base: cohort,
            crowd,
            ghost: UeImsi(cohort + crowd),
            warmup_ue: UeImsi(cohort + crowd + 1),
            asleep: vec![false; n as usize],
            ledger: BTreeMap::new(),
            auditor: ConsistencyAuditor::new(),
            violations: Vec::new(),
            outage: false,
            parity_flagged: false,
            micro: MicroStats::default(),
            overlay: OverlayStats::default(),
            macro_tier: MacroStats {
                modeled_ues: self.ues,
                ..MacroStats::default()
            },
            probes: ProbeStats::default(),
            shape: DiurnalShape::default(),
            rng: StdRng::seed_from_u64(self.seed ^ 0x5CE2_AE10_CA3B_A162),
            baseline_rules: 0,
            baseline_tags: 0,
            counters: Counters::new(&self.name),
        };

        // Pin the residue baseline: one reserved UE walks a flow of
        // every application class at every station, so every
        // (station, clause) path — rules and tags — exists before the
        // snapshot and the day can't legitimately grow the rule set.
        d.warmup(&mut w)?;
        d.rebaseline(&w);

        // The dense source trace, diurnally warped onto the day.
        let dense = SimDuration::from_micros((day_us / self.compress.max(1)).max(1_000_000));
        let trace = EventStream::generate(&EventStreamConfig {
            base_stations: n,
            ues: cohort,
            duration: dense,
            mean_session: SimDuration::from_micros(dense.as_micros() / 4),
            mean_gap: SimDuration::from_micros(dense.as_micros() / 5),
            mean_flow_gap: SimDuration::from_micros(dense.as_micros() / 20),
            mean_handoff_gap: SimDuration::from_micros(dense.as_micros() / 6),
            seed: self.seed,
        })
        .warp_diurnal(&d.shape, dense, self.virtual_day);

        let schedule = d.schedule();
        let slice_us = self.slice.as_micros().max(1);
        let mut next_action = 0usize;
        let mut next_slice = slice_us;
        for ev in trace.events() {
            let t = ev.time.as_micros().min(day_us);
            d.catch_up(&mut w, t, &schedule, &mut next_action, &mut next_slice)?;
            advance_to(&mut w, t);
            d.apply_event(&mut w, ev);
        }
        d.catch_up(&mut w, day_us, &schedule, &mut next_action, &mut next_slice)?;
        advance_to(&mut w, day_us);

        d.drain(&mut w)?;
        let quiesce = d.quiesce(&w);

        let dump = fabric_dump(&topo, &w);
        let report = ScenarioReport {
            scenario: self.name.clone(),
            seed: self.seed,
            ues: self.ues,
            cohort,
            stations: n as u64,
            virtual_day_s: self.virtual_day.as_micros() / 1_000_000,
            compress: self.compress,
            micro: d.micro,
            overlay: d.overlay,
            macro_tier: d.macro_tier,
            probes: d.probes,
            quiesce,
            violations: d.violations,
            fabric_digest: fnv1a_hex(&dump),
            wall_ms: wall.elapsed().as_millis() as u64,
        };
        Ok(ScenarioOutcome {
            report,
            fabric_dump: self.capture_fabric_dump.then_some(dump),
        })
    }
}

/// A connection the driver still considers in-flight (accounting only;
/// replay happens at creation and around handoffs, never later).
struct LiveConn {
    opened: SimTime,
}

/// Driver-side truth about one attached UE.
struct UeState {
    bs: BaseStationId,
    conns: Vec<LiveConn>,
}

/// Scheduled overlay actions (virtual fire time, what).
#[derive(Clone, Copy, Debug)]
enum Action {
    TrainStorm,
    Sleep,
    Wake,
    GatewayKill,
    GatewayRecover,
    ControllerKill,
    FlashCrowd,
    FlashDrain,
    InjectGhost,
}

struct Counters {
    events: std::sync::Arc<softcell_telemetry::Counter>,
    overlay_actions: std::sync::Arc<softcell_telemetry::Counter>,
    probe_runs: std::sync::Arc<softcell_telemetry::Counter>,
    violations: std::sync::Arc<softcell_telemetry::Counter>,
}

impl Counters {
    fn new(scenario: &str) -> Counters {
        let reg = Registry::global();
        let label = format!("scenario={scenario}");
        Counters {
            events: reg.counter_with("softcell_scenario_events_total", &label),
            overlay_actions: reg.counter_with("softcell_scenario_overlay_actions_total", &label),
            probe_runs: reg.counter_with("softcell_scenario_probe_runs_total", &label),
            violations: reg.counter_with("softcell_scenario_violations_total", &label),
        }
    }
}

struct Driver<'c> {
    cfg: &'c CampaignConfig,
    n: u32,
    day_us: u64,
    crowd_base: u64,
    crowd: u64,
    ghost: UeImsi,
    warmup_ue: UeImsi,
    asleep: Vec<bool>,
    ledger: BTreeMap<UeImsi, UeState>,
    auditor: ConsistencyAuditor,
    violations: Vec<Violation>,
    outage: bool,
    parity_flagged: bool,
    micro: MicroStats,
    overlay: OverlayStats,
    macro_tier: MacroStats,
    probes: ProbeStats,
    shape: DiurnalShape,
    rng: StdRng,
    baseline_rules: usize,
    baseline_tags: usize,
    counters: Counters,
}

impl Driver<'_> {
    // ---- invariant bookkeeping ------------------------------------

    fn violate(&mut self, w: &SimWorld, invariant: &str, event: &str, detail: String) {
        self.counters.violations.inc();
        if self.violations.len() >= MAX_VIOLATIONS {
            return;
        }
        self.violations.push(Violation {
            scenario: self.cfg.name.clone(),
            invariant: invariant.to_string(),
            virtual_time_us: w.now().as_micros(),
            seed: self.cfg.seed,
            event: event.to_string(),
            detail,
        });
    }

    // ---- micro-tier event application -----------------------------

    fn apply_event(&mut self, w: &mut SimWorld, ev: &TraceEvent) {
        self.counters.events.inc();
        // Trace root per cohort event: controller/agent spans opened
        // while handling it nest under the thread-local context. With
        // sampling disarmed this is one atomic load.
        let mut root = Registry::global().tracer().root(match ev.kind {
            EventKind::Attach { .. } => "scenario_attach",
            EventKind::NewFlow { .. } => "scenario_new_flow",
            EventKind::Handoff { .. } => "scenario_handoff",
            EventKind::Detach { .. } => "scenario_detach",
        });
        root.set_label(ev.imsi.0);
        match ev.kind {
            EventKind::Attach { bs } => self.do_attach(w, ev.imsi, bs, false),
            EventKind::NewFlow { dst_port, udp, .. } => self.do_flow(w, ev.imsi, dst_port, udp),
            EventKind::Handoff { to, .. } => self.do_handoff(w, ev.imsi, to),
            EventKind::Detach { .. } => self.do_detach(w, ev.imsi),
        }
    }

    /// First awake station at or after `want` (sleeping cells redirect).
    fn awake_target(&self, want: BaseStationId) -> BaseStationId {
        for d in 0..self.n {
            let c = BaseStationId((want.0 + d) % self.n);
            if !self.asleep[c.index()] {
                return c;
            }
        }
        want
    }

    fn do_attach(&mut self, w: &mut SimWorld, imsi: UeImsi, bs: BaseStationId, crowd: bool) {
        if self.ledger.contains_key(&imsi) {
            self.micro.skipped += 1;
            return;
        }
        let target = self.awake_target(bs);
        if target != bs {
            self.micro.redirected += 1;
        }
        match w.attach(imsi, target) {
            Ok(()) => {
                self.ledger.insert(
                    imsi,
                    UeState {
                        bs: target,
                        conns: Vec::new(),
                    },
                );
                self.micro.attaches += 1;
                if crowd {
                    self.overlay.crowd_attaches += 1;
                }
            }
            Err(Error::Exhausted(_)) => self.micro.rejected += 1,
            Err(e) => self.violate(
                w,
                "event-application",
                &format!("attach {imsi} at {target}"),
                e.to_string(),
            ),
        }
    }

    fn do_flow(&mut self, w: &mut SimWorld, imsi: UeImsi, dst_port: u16, udp: bool) {
        if !self.ledger.contains_key(&imsi) {
            self.micro.skipped += 1;
            return;
        }
        if self.outage {
            self.micro.outage_skipped += 1;
            return;
        }
        let proto = if udp { Protocol::Udp } else { Protocol::Tcp };
        let conn = match w.start_connection(imsi, INTERNET, dst_port, proto) {
            Ok(c) => c,
            Err(e) => {
                self.violate(
                    w,
                    "event-application",
                    &format!("flow {imsi}:{dst_port}"),
                    e.to_string(),
                );
                return;
            }
        };
        match w.round_trip(conn) {
            Ok(()) => {
                self.micro.flows += 1;
                self.micro.round_trips += 1;
                let opened = w.now();
                if let Some(st) = self.ledger.get_mut(&imsi) {
                    st.conns.push(LiveConn { opened });
                }
            }
            Err(Error::Exhausted(_)) => self.micro.rejected += 1,
            Err(e) => self.violate(
                w,
                "policy-path",
                &format!("flow {imsi}:{dst_port}"),
                e.to_string(),
            ),
        }
    }

    /// A handoff carries a live flow across the move: a fresh
    /// connection round-trips at the old cell, the UE moves, and the
    /// *same* connection round-trips again — downlink now riding the
    /// mobility tunnel (§5.1). A broken post-move path is a violation.
    fn do_handoff(&mut self, w: &mut SimWorld, imsi: UeImsi, to: BaseStationId) {
        let Some(cur) = self.ledger.get(&imsi).map(|s| s.bs) else {
            self.micro.skipped += 1;
            return;
        };
        let mut target = self.awake_target(to);
        if target == cur {
            // redirect landed on the current cell; try its neighbour
            target = self.awake_target(BaseStationId((target.0 + 1) % self.n));
        }
        if target == cur {
            self.micro.skipped += 1;
            return;
        }
        if target != to {
            self.micro.redirected += 1;
        }
        let carried = if self.outage {
            None
        } else {
            match w.start_connection(imsi, INTERNET, 443, Protocol::Tcp) {
                Ok(c) => match w.round_trip(c) {
                    Ok(()) => {
                        self.micro.round_trips += 1;
                        Some(c)
                    }
                    Err(Error::Exhausted(_)) => {
                        self.micro.rejected += 1;
                        None
                    }
                    Err(e) => {
                        self.violate(
                            w,
                            "policy-path",
                            &format!("pre-handoff flow {imsi}"),
                            e.to_string(),
                        );
                        None
                    }
                },
                Err(_) => None,
            }
        };
        match w.handoff(imsi, target) {
            Ok(()) => {
                if let Some(st) = self.ledger.get_mut(&imsi) {
                    st.bs = target;
                }
                self.micro.handoffs += 1;
            }
            Err(Error::Exhausted(_)) => {
                self.micro.rejected += 1;
                return;
            }
            Err(e) => {
                self.violate(
                    w,
                    "event-application",
                    &format!("handoff {imsi} {cur}->{target}"),
                    e.to_string(),
                );
                return;
            }
        }
        if let Some(c) = carried {
            match w.round_trip(c) {
                Ok(()) => {
                    self.micro.round_trips += 1;
                    let opened = w.now();
                    if let Some(st) = self.ledger.get_mut(&imsi) {
                        st.conns.push(LiveConn { opened });
                    }
                }
                Err(e) => self.violate(
                    w,
                    "policy-path",
                    &format!("post-handoff flow {imsi} at {target}"),
                    format!("tunnel path broke: {e}"),
                ),
            }
        }
    }

    fn do_detach(&mut self, w: &mut SimWorld, imsi: UeImsi) {
        if self.ledger.remove(&imsi).is_none() {
            self.micro.skipped += 1;
            return;
        }
        match w.detach(imsi) {
            Ok(()) => self.micro.detaches += 1,
            Err(e) => self.violate(
                w,
                "event-application",
                &format!("detach {imsi}"),
                e.to_string(),
            ),
        }
    }

    // ---- warmup & baseline ----------------------------------------

    /// Attaches the reserved warmup UE at every station (sleep state is
    /// a driver fiction — the fabric stays warm) and walks one flow of
    /// every application class, so every (station, clause) policy path
    /// exists before the residue baseline is pinned.
    fn warmup(&mut self, w: &mut SimWorld) -> Result<()> {
        for bs in 0..self.n {
            w.attach(self.warmup_ue, BaseStationId(bs))?;
            for (port, udp) in APP_PORTS {
                let proto = if udp { Protocol::Udp } else { Protocol::Tcp };
                let c = w.start_connection(self.warmup_ue, INTERNET, port, proto)?;
                w.round_trip(c)?;
            }
            w.detach(self.warmup_ue)?;
        }
        Ok(())
    }

    fn rebaseline(&mut self, w: &SimWorld) {
        self.baseline_rules = w.net.total_rules();
        self.baseline_tags = w.controller.installer().tags_in_use();
    }

    // ---- overlay schedule -----------------------------------------

    /// Fire times as fractions of the virtual day, so a compressed test
    /// day exercises the same relative schedule as a full 24 h run.
    fn schedule(&self) -> Vec<(u64, Action)> {
        let at = |num: u64, den: u64| self.day_us / den * num;
        let mut s: Vec<(u64, Action)> = Vec::new();
        for ov in &self.cfg.overlays {
            match ov {
                OverlayKind::TrainStorm => {
                    s.push((at(8, 24), Action::TrainStorm)); // morning rush
                    s.push((at(18, 24), Action::TrainStorm)); // evening rush
                }
                OverlayKind::SleepWake => {
                    s.push((at(3, 48), Action::Sleep)); // 01:30 trough
                    s.push((at(11, 48), Action::Wake)); // 05:30
                }
                OverlayKind::GatewayFlap => {
                    s.push((at(11, 24), Action::GatewayKill)); // 11:00
                    s.push((at(23, 48), Action::GatewayRecover)); // 11:30
                }
                OverlayKind::ControllerKill => {
                    s.push((at(73, 96), Action::ControllerKill)); // 18:15
                }
                OverlayKind::FlashCrowd => {
                    s.push((at(5, 6), Action::FlashCrowd)); // 20:00 peak
                    s.push((at(7, 8), Action::FlashDrain)); // 21:00
                }
                OverlayKind::InjectViolation => {
                    s.push((at(1, 2), Action::InjectGhost));
                }
            }
        }
        s.sort_by_key(|(t, _)| *t);
        s
    }

    /// Fires every schedule action and slice boundary due at or before
    /// virtual time `t`, in time order (actions before probes on ties,
    /// so probes see post-action state).
    fn catch_up(
        &mut self,
        w: &mut SimWorld,
        t: u64,
        schedule: &[(u64, Action)],
        next_action: &mut usize,
        next_slice: &mut u64,
    ) -> Result<()> {
        loop {
            let action_due = schedule
                .get(*next_action)
                .map(|(at, _)| *at)
                .filter(|at| *at <= t);
            let slice_due = (*next_slice <= t).then_some(*next_slice);
            match (action_due, slice_due) {
                (Some(at), sl) if sl.is_none_or(|sl| at <= sl) => {
                    let (_, a) = schedule[*next_action];
                    *next_action += 1;
                    advance_to(w, at);
                    self.fire(w, a)?;
                }
                (_, Some(sl)) => {
                    *next_slice += self.cfg.slice.as_micros().max(1);
                    advance_to(w, sl);
                    self.slice_boundary(w)?;
                }
                _ => return Ok(()),
            }
        }
    }

    fn fire(&mut self, w: &mut SimWorld, a: Action) -> Result<()> {
        self.overlay.actions += 1;
        self.counters.overlay_actions.inc();
        match a {
            Action::TrainStorm => self.train_storm(w),
            Action::Sleep => self.sleep(w),
            Action::Wake => {
                self.asleep.iter_mut().for_each(|s| *s = false);
            }
            Action::GatewayKill => self.gateway_kill(),
            Action::GatewayRecover => self.gateway_recover(w)?,
            Action::ControllerKill => self.controller_kill(w),
            Action::FlashCrowd => self.flash_crowd(w),
            Action::FlashDrain => self.flash_drain(w),
            Action::InjectGhost => self.inject_ghost(w),
        }
        Ok(())
    }

    /// A commuter train: a line of four adjacent cells; each rider
    /// hands off along every stop with a live flow carried across each
    /// move.
    fn train_storm(&mut self, w: &mut SimWorld) {
        let start = self.rng.gen_range(0..self.n);
        let line: Vec<BaseStationId> = (0..4u32)
            .map(|i| BaseStationId((start + i) % self.n))
            .collect();
        let mut pool: Vec<UeImsi> = self.ledger.keys().copied().collect();
        if pool.is_empty() {
            return;
        }
        let riders = (pool.len() / 8).clamp(1, 64);
        for _ in 0..riders {
            let imsi = pool.swap_remove(self.rng.gen_range(0..pool.len()));
            for stop in &line {
                self.do_handoff(w, imsi, *stop);
            }
            self.overlay.storm_rides += 1;
            if pool.is_empty() {
                return;
            }
        }
    }

    /// HyCell trough: every third station sleeps; its UEs are handed
    /// off (flows carried along) to the nearest awake neighbour.
    fn sleep(&mut self, w: &mut SimWorld) {
        for i in 0..self.n {
            if i % 3 == 1 {
                self.asleep[i as usize] = true;
                self.overlay.stations_slept += 1;
            }
        }
        let evacuees: Vec<UeImsi> = self
            .ledger
            .iter()
            .filter(|(_, st)| self.asleep[st.bs.index()])
            .map(|(imsi, _)| *imsi)
            .collect();
        for imsi in evacuees {
            let cur = self.ledger[&imsi].bs;
            // do_handoff redirects away from the sleeping current cell
            self.do_handoff(w, imsi, cur);
            self.overlay.evacuated += 1;
        }
    }

    fn gateway_kill(&mut self) {
        self.outage = true;
        for st in self.ledger.values_mut() {
            self.overlay.outage_dropped += st.conns.len() as u64;
            st.conns.clear();
        }
    }

    /// Recovery runs the §3.2 offline reroute: the rule set is swapped
    /// and every tag cache flushed, which starts a fresh
    /// policy-consistency epoch — the tracker's `ConnKey` slots recycle
    /// across the swap, so the auditor's references must be dropped
    /// with it, and the residue baseline re-pinned after a re-warmup.
    fn gateway_recover(&mut self, w: &mut SimWorld) -> Result<()> {
        self.outage = false;
        for st in self.ledger.values_mut() {
            self.overlay.outage_dropped += st.conns.len() as u64;
            st.conns.clear();
        }
        if let Err(e) = w.apply_reoptimization() {
            self.violate(w, "event-application", "gateway-recover", e.to_string());
            return Ok(());
        }
        let cfg = *w.controller.config();
        w.net.middleboxes = MiddleboxTracker::new(cfg.scheme, cfg.ports);
        self.auditor.reset();
        if let Err(e) = self.warmup(w) {
            self.violate(w, "event-application", "post-recover warmup", e.to_string());
        }
        self.rebaseline(w);
        Ok(())
    }

    /// Runs the replicated-control-plane `kill -9` drill out-of-band
    /// (its cluster is a control-plane twin; the data-plane world keeps
    /// running). Non-convergence is a campaign violation.
    fn controller_kill(&mut self, w: &mut SimWorld) {
        self.overlay.controller_kills += 1;
        let out = controller_kill_drill(self.cfg.seed);
        if out.converged {
            self.overlay.drills_converged += 1;
        } else {
            self.violate(w, "replica-convergence", "controller-kill", out.detail);
        }
    }

    fn flash_crowd(&mut self, w: &mut SimWorld) {
        if self.crowd == 0 {
            return;
        }
        let cell = BaseStationId(self.rng.gen_range(0..self.n));
        for j in 0..self.crowd {
            let imsi = UeImsi(self.crowd_base + j);
            self.do_attach(w, imsi, cell, true);
            if self.ledger.contains_key(&imsi) {
                self.do_flow(w, imsi, 443, false);
            }
        }
    }

    fn flash_drain(&mut self, w: &mut SimWorld) {
        for j in 0..self.crowd {
            let imsi = UeImsi(self.crowd_base + j);
            if self.ledger.contains_key(&imsi) {
                self.do_detach(w, imsi);
            }
        }
    }

    /// The seeded violation: a ghost attach injected straight into the
    /// controller, bypassing the agents and the driver's ledger. The
    /// attached-parity probe must catch it at the next slice.
    fn inject_ghost(&mut self, w: &mut SimWorld) {
        let bs = BaseStationId(0);
        let max = w.controller.config().scheme.max_ues_per_station();
        let free = (0..max)
            .map(|i| UeId(i as u16))
            .find(|id| w.controller.state().location_available(bs, *id, self.ghost));
        let Some(id) = free else { return };
        let now = w.now();
        if w.controller.attach_ue(self.ghost, bs, id, now).is_ok() {
            let ops = w.controller.drain_ops();
            let _ = w.net.apply_all(&ops);
        }
    }

    // ---- slice boundaries: housekeeping, probes, macro tier -------

    fn slice_boundary(&mut self, w: &mut SimWorld) -> Result<()> {
        self.housekeeping(w)?;
        self.probe(w);
        self.macro_tick(w.now().as_micros());
        Ok(())
    }

    fn housekeeping(&mut self, w: &mut SimWorld) -> Result<()> {
        let now = w.now();
        let ops = w.controller.expire_transitions(now);
        w.net.apply_all(&ops)?;
        for sw in w.net.switches_mut() {
            sw.microflow.expire_idle(now);
        }
        self.probes.flows_retired += w.retire_expired_flows() as u64;
        for st in self.ledger.values_mut() {
            st.conns.retain(|c| now.since(c.opened) <= FRESH_WINDOW);
        }
        Ok(())
    }

    fn probe(&mut self, w: &mut SimWorld) {
        self.probes.runs += 1;
        self.counters.probe_runs.inc();

        // Attached-population parity: driver ledger vs controller.
        let ctl = w.controller.state().attached_count() as u64;
        let ours = self.ledger.len() as u64;
        if ctl != ours && !self.parity_flagged {
            self.parity_flagged = true;
            self.violate(
                w,
                "attached-parity",
                "slice-probe",
                format!("controller holds {ctl} attached UEs, driver ledger holds {ours}"),
            );
        }

        // Policy consistency over the new tracker-log slice.
        if let Err(e) = self.auditor.audit(&w.net.middleboxes) {
            self.violate(w, "policy-consistency", "slice-probe", e.to_string());
        }
        self.probes.chain_segments = self.auditor.segments_checked();

        // Once mobility quiesces, no tunnel/tag/reservation residue.
        if w.controller.mobility().transitions_active() == 0 {
            let tunnels = w.controller.mobility().tunnel_count();
            let reserved = w.controller.state().reserved_count();
            if tunnels != 0 || reserved != 0 {
                self.violate(
                    w,
                    "mobility-residue",
                    "slice-probe",
                    format!(
                        "no transitions active but {tunnels} tunnels, {reserved} reserved locations"
                    ),
                );
            }
            let tags = w.controller.installer().tags_in_use();
            if tags > self.baseline_tags {
                self.violate(
                    w,
                    "tag-residue",
                    "slice-probe",
                    format!("{tags} tags in use, warmup baseline {}", self.baseline_tags),
                );
            }
        }

        // Microflow occupancy stays bounded by the attached population.
        let mut per_station: BTreeMap<BaseStationId, u64> = BTreeMap::new();
        for st in self.ledger.values() {
            *per_station.entry(st.bs).or_default() += 1;
        }
        for bs in w.controller.topology().base_stations() {
            let len = w.net.switch(bs.access_switch).microflow.len() as u64;
            self.probes.microflow_peak = self.probes.microflow_peak.max(len);
            let attached = per_station.get(&bs.id).copied().unwrap_or(0);
            let bound = attached * 64 * 4 + 64;
            if len > bound {
                self.violate(
                    w,
                    "microflow-occupancy",
                    "slice-probe",
                    format!("{}: {len} microflow entries, bound {bound}", bs.id),
                );
            }
        }
    }

    /// Statistical accounting for the modeled population beyond the
    /// cohort: seeded Poisson arrivals against the paper's published
    /// peak rates, shaped by the diurnal factor.
    fn macro_tick(&mut self, t_us: u64) {
        let scale = self.cfg.ues as f64 / 1e6;
        let sod = ((t_us as u128 * 86_400 / self.day_us as u128) as u64).min(86_399);
        let f = self.shape.factor(sod);
        let slice_s = self.cfg.slice.as_micros().max(1) as f64 / 1e6;
        let attaches = poisson(
            &mut self.rng,
            PEAK_ATTACHES_PER_S_AT_1M * scale * f * slice_s,
        );
        let handoffs = poisson(
            &mut self.rng,
            PEAK_HANDOFFS_PER_S_AT_1M * scale * f * slice_s,
        );
        let flows = poisson(
            &mut self.rng,
            PEAK_ATTACHES_PER_S_AT_1M * 6.0 * scale * f * slice_s,
        );
        self.macro_tier.attaches += attaches;
        self.macro_tier.handoffs += handoffs;
        self.macro_tier.flows += flows;
        self.macro_tier.peak_attach_per_s = self
            .macro_tier
            .peak_attach_per_s
            .max(attaches as f64 / slice_s);
        self.macro_tier.peak_handoff_per_s = self
            .macro_tier
            .peak_handoff_per_s
            .max(handoffs as f64 / slice_s);
    }

    // ---- end of day -----------------------------------------------

    /// Detaches everyone still attached, lets every TTL lapse, and runs
    /// a final housekeeping + audit pass.
    fn drain(&mut self, w: &mut SimWorld) -> Result<()> {
        let everyone: Vec<UeImsi> = self.ledger.keys().copied().collect();
        for imsi in everyone {
            self.do_detach(w, imsi);
        }
        w.advance(SimDuration::from_secs(10_000)); // > all TTLs
        self.housekeeping(w)?;
        if let Err(e) = self.auditor.audit(&w.net.middleboxes) {
            self.violate(w, "policy-consistency", "drain", e.to_string());
        }
        Ok(())
    }

    /// End-of-day residue check against the warmup baseline.
    fn quiesce(&mut self, w: &SimWorld) -> QuiesceStats {
        let q = QuiesceStats {
            attached: w.controller.state().attached_count() as u64,
            reserved: w.controller.state().reserved_count() as u64,
            transitions: w.controller.mobility().transitions_active() as u64,
            tunnels: w.controller.mobility().tunnel_count() as u64,
            rules_delta: w.net.total_rules() as i64 - self.baseline_rules as i64,
            tags_delta: w.controller.installer().tags_in_use() as i64 - self.baseline_tags as i64,
            microflow_entries: w
                .controller
                .topology()
                .switches()
                .iter()
                .map(|sw| w.net.switch(sw.id).microflow.len() as u64)
                .sum(),
        };
        let residue = q.attached != 0
            || q.reserved != 0
            || q.transitions != 0
            || q.tunnels != 0
            || q.rules_delta != 0
            || q.tags_delta != 0
            || q.microflow_entries != 0;
        if residue {
            self.counters.violations.inc();
            if self.violations.len() < MAX_VIOLATIONS {
                self.violations.push(Violation {
                    scenario: self.cfg.name.clone(),
                    invariant: "quiesce-residue".to_string(),
                    virtual_time_us: w.now().as_micros(),
                    seed: self.cfg.seed,
                    event: "end-of-day".to_string(),
                    detail: format!(
                        "attached={} reserved={} transitions={} tunnels={} rules_delta={} \
                         tags_delta={} microflow={}",
                        q.attached,
                        q.reserved,
                        q.transitions,
                        q.tunnels,
                        q.rules_delta,
                        q.tags_delta,
                        q.microflow_entries
                    ),
                });
            }
        }
        q
    }
}

fn advance_to(w: &mut SimWorld, t_us: u64) {
    let now = w.now().as_micros();
    if t_us > now {
        w.advance(SimDuration::from_micros(t_us - now));
    }
}

/// Seeded Poisson sampler: Knuth for small means, a normal
/// approximation (Irwin–Hall sum of 12 uniforms) beyond.
fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 32.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen_range(0.0..1.0);
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    let mut s = 0.0f64;
    for _ in 0..12 {
        s += rng.gen_range(0.0..1.0);
    }
    let z = s - 6.0;
    (mean + z * mean.sqrt()).round().max(0.0) as u64
}

/// Dumps every switch's rule table — the determinism oracle. (The
/// integration-test helper in `tests/common` is not a crate; this is
/// the same format.)
fn fabric_dump(topo: &Topology, w: &SimWorld) -> String {
    let mut s = String::new();
    for sw in topo.switches() {
        let _ = writeln!(s, "== {:?}", sw.id);
        for r in w.net.switch(sw.id).table.iter() {
            let _ = writeln!(s, "{r:?}");
        }
    }
    s
}

/// 64-bit FNV-1a, hex-encoded.
fn fnv1a_hex(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::overlays_for;

    /// A fast sub-small config for unit tests.
    fn tiny(name: &str) -> CampaignConfig {
        let mut c = CampaignConfig::small(name, overlays_for(name).unwrap());
        c.ues = 48;
        c.cohort_cap = 48;
        c.virtual_day = SimDuration::from_secs(600);
        c.compress = 10;
        c.slice = SimDuration::from_secs(30);
        c
    }

    #[test]
    fn diurnal_tiny_day_is_clean() {
        let out = tiny("diurnal").run().unwrap();
        assert!(
            out.report.clean(),
            "violations: {:?}",
            out.report.violations
        );
        assert!(out.report.micro.attaches > 0);
        assert!(out.report.micro.flows > 0);
        assert!(out.report.probes.runs >= 10);
        assert_eq!(out.report.quiesce.microflow_entries, 0);
    }

    #[test]
    fn overlays_compose_on_a_tiny_day() {
        for name in ["train-storm", "sleep-wake", "flash-crowd"] {
            let out = tiny(name).run().unwrap();
            assert!(
                out.report.clean(),
                "{name} violations: {:?}",
                out.report.violations
            );
        }
    }

    #[test]
    fn seeded_violation_is_caught_with_replay_coordinates() {
        let out = tiny("seeded-violation").run().unwrap();
        assert!(!out.report.clean(), "the ghost attach must be caught");
        let v = &out.report.violations[0];
        assert_eq!(v.invariant, "attached-parity");
        assert_eq!(v.seed, 2013);
        assert!(v.virtual_time_us > 0);
        assert!(v.replay_coordinates().contains("--seed 2013"));
    }

    #[test]
    fn same_config_same_digest() {
        let mut cfg = tiny("train-storm");
        cfg.capture_fabric_dump = true;
        let a = cfg.run().unwrap();
        let b = cfg.run().unwrap();
        assert_eq!(a.report.fabric_digest, b.report.fabric_digest);
        assert_eq!(a.fabric_dump, b.fabric_dump);
        assert_eq!(a.report.micro.attaches, b.report.micro.attaches);
        assert_eq!(a.report.macro_tier.attaches, b.report.macro_tier.attaches);
    }

    #[test]
    fn poisson_matches_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        for mean in [0.5, 4.0, 40.0, 400.0] {
            let n = 400;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let avg = total as f64 / n as f64;
            assert!(
                (avg - mean).abs() < mean.max(1.0) * 0.25,
                "mean {mean}, got {avg}"
            );
        }
    }
}
