//! Per-scenario run artifacts.

use serde::Serialize;

use crate::invariants::Violation;

/// Micro-tier (cohort) event accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct MicroStats {
    /// Attaches applied through agents.
    pub attaches: u64,
    /// Handoffs applied through the controller's mobility plan.
    pub handoffs: u64,
    /// Flows opened (classification + microflow install + round trip).
    pub flows: u64,
    /// Detaches applied.
    pub detaches: u64,
    /// Full uplink+downlink round trips completed.
    pub round_trips: u64,
    /// Attaches/handoffs redirected away from a sleeping station.
    pub redirected: u64,
    /// Events skipped because the UE state made them no-ops (e.g. a
    /// handoff whose redirect target equals the current cell).
    pub skipped: u64,
    /// Attaches/handoffs refused by cell capacity (admission control).
    pub rejected: u64,
    /// Flow events suppressed while the gateway was down.
    pub outage_skipped: u64,
}

/// Overlay action accounting.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct OverlayStats {
    /// Scheduled overlay actions fired.
    pub actions: u64,
    /// Individual train-storm rides (one ride = one UE crossing the
    /// whole line with a live flow).
    pub storm_rides: u64,
    /// Stations put to sleep at the trough.
    pub stations_slept: u64,
    /// UEs evacuated (handed off) out of sleeping stations.
    pub evacuated: u64,
    /// Crowd UEs attached during the flash-crowd burst.
    pub crowd_attaches: u64,
    /// Connections dropped by the gateway failure.
    pub outage_dropped: u64,
    /// Replicated-controller kill drills executed.
    pub controller_kills: u64,
    /// Kill drills whose survivors converged byte-for-byte.
    pub drills_converged: u64,
}

/// Macro-tier (statistical) accounting for the modeled population
/// beyond the cohort.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct MacroStats {
    /// Total modeled UE population (the `--ues` figure).
    pub modeled_ues: u64,
    /// Sampled attaches across the day.
    pub attaches: u64,
    /// Sampled handoffs across the day.
    pub handoffs: u64,
    /// Sampled radio-bearer (flow) arrivals across the day.
    pub flows: u64,
    /// Peak sampled attach rate, events/s (paper Fig 6a: 214/s at 1M).
    pub peak_attach_per_s: f64,
    /// Peak sampled handoff rate, events/s (paper Fig 6a: 280/s at 1M).
    pub peak_handoff_per_s: f64,
}

/// Invariant-probe accounting.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct ProbeStats {
    /// Slice-boundary probe passes.
    pub runs: u64,
    /// Middlebox chain segments checked by the incremental auditor.
    pub chain_segments: u64,
    /// Peak microflow entries observed on any single access switch.
    pub microflow_peak: u64,
    /// Agent flow records retired after their microflow entries idled
    /// out (the slot-leak fix working).
    pub flows_retired: u64,
}

/// End-of-day residue check, after detaching every UE and expiring all
/// soft state. All-zero deltas mean the day left no residue.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct QuiesceStats {
    /// UEs the controller still considers attached (must be 0).
    pub attached: u64,
    /// Reserved (handoff-held) locations (must be 0).
    pub reserved: u64,
    /// Active mobility transitions (must be 0).
    pub transitions: u64,
    /// Live tunnel tags (must be 0).
    pub tunnels: u64,
    /// Fabric rules minus the post-warmup baseline (must be 0).
    pub rules_delta: i64,
    /// Tags in use minus the post-warmup baseline (must be 0).
    pub tags_delta: i64,
    /// Microflow entries remaining anywhere (must be 0).
    pub microflow_entries: u64,
}

/// The per-scenario run artifact.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Campaign seed (replay key).
    pub seed: u64,
    /// Modeled UE population.
    pub ues: u64,
    /// Cohort size driven through the real stack.
    pub cohort: u64,
    /// Base stations in the simulated fabric.
    pub stations: u64,
    /// Virtual day length, seconds.
    pub virtual_day_s: u64,
    /// Time-compression factor (dense trace = day / compress).
    pub compress: u64,
    /// Micro-tier event accounting.
    pub micro: MicroStats,
    /// Overlay action accounting.
    pub overlay: OverlayStats,
    /// Macro-tier statistical accounting.
    pub macro_tier: MacroStats,
    /// Invariant-probe accounting.
    pub probes: ProbeStats,
    /// End-of-day residue check.
    pub quiesce: QuiesceStats,
    /// Violations, in detection order (empty on a green run).
    pub violations: Vec<Violation>,
    /// FNV-1a digest of the final fabric dump (hex) — the determinism
    /// oracle: same config ⇒ same digest.
    pub fabric_digest: String,
    /// Wall-clock runtime, milliseconds (excluded from determinism
    /// comparisons).
    pub wall_ms: u64,
}

impl ScenarioReport {
    /// Whether the run finished with zero violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One summary line for terminal output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<16} ues={:<8} cohort={:<5} ev={:<7} ho={:<6} storms={:<4} \
             probes={:<5} violations={:<3} peak_attach/s={:<7.1} {}  [{} ms]",
            self.scenario,
            self.ues,
            self.cohort,
            self.micro.attaches + self.micro.handoffs + self.micro.flows + self.micro.detaches,
            self.micro.handoffs,
            self.overlay.storm_rides,
            self.probes.runs,
            self.violations.len(),
            self.macro_tier.peak_attach_per_s,
            if self.clean() { "OK" } else { "VIOLATED" },
            self.wall_ms,
        )
    }
}

/// A whole campaign: one report per scenario.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignReport {
    /// Per-scenario reports, in run order.
    pub scenarios: Vec<ScenarioReport>,
}

impl CampaignReport {
    /// Whether every scenario finished with zero violations.
    pub fn clean(&self) -> bool {
        self.scenarios.iter().all(ScenarioReport::clean)
    }

    /// Pretty JSON artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Terminal summary, one line per scenario plus replay recipes for
    /// any violations.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for r in &self.scenarios {
            s.push_str(&r.summary_line());
            s.push('\n');
            for v in &r.violations {
                s.push_str(&format!("    {v}\n    {}\n", v.replay_coordinates()));
            }
        }
        s
    }
}
