//! Composable scenario overlays.
//!
//! An overlay perturbs the base diurnal cycle at scheduled virtual
//! times (expressed as fractions of the virtual day, so a compressed
//! one-hour test day exercises the same relative schedule as a full 24 h
//! run). Overlays compose: the `all` scenario stacks every
//! non-test overlay on one day.

use serde::Serialize;

/// One composable overlay on the base diurnal cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum OverlayKind {
    /// Commuter handoff storms along a "train line" of adjacent base
    /// stations at the morning and evening rush hours; each rider
    /// carries a live flow across every hop (paper §5.1 mobility).
    TrainStorm,
    /// HyCell-style energy saving: a third of the stations sleeps at
    /// the night trough after evacuating its UEs (live flows carried
    /// along), wakes for the morning commute. Sleeping stations redirect
    /// attaches/handoffs to the next awake cell.
    SleepWake,
    /// Gateway process failure at mid-day: in-flight connections are
    /// lost, new flows are refused during the outage, and recovery
    /// triggers the §3.2 offline reroute (rule-set swap + tag-cache
    /// flush), starting a fresh policy-consistency epoch.
    GatewayFlap,
    /// `kill -9` of one controller of a replicated 3-node cluster
    /// mid-storm: survivors must converge byte-for-byte on the dead
    /// leader's committed state and the orphaned agent must re-home
    /// (DESIGN.md §13). Divergence is a campaign violation.
    ControllerKill,
    /// Flash crowd: a burst of extra UEs attaches at a single cell at
    /// peak hour, each opening a flow; cell-capacity rejections are
    /// admission control (counted), not violations. The crowd drains an
    /// hour later.
    FlashCrowd,
    /// Test-only: a ghost attach injected straight into the controller,
    /// bypassing the driver's ledger and the agents. The
    /// attached-parity probe must catch it at the next slice — this is
    /// the seeded violation proving the probes are live.
    InjectViolation,
}

/// Scenario names accepted by `metro_campaign --scenario` and
/// [`overlays_for`]. (`seeded-violation` also resolves but is
/// deliberately not listed: it is the probe-liveness test, not a
/// regression scenario.)
pub const SCENARIOS: &[&str] = &[
    "diurnal",
    "train-storm",
    "sleep-wake",
    "gateway-flap",
    "controller-kill",
    "flash-crowd",
    "all",
];

/// The overlay set of a named scenario, `None` if the name is unknown.
pub fn overlays_for(name: &str) -> Option<Vec<OverlayKind>> {
    use OverlayKind::*;
    Some(match name {
        "diurnal" => vec![],
        "train-storm" => vec![TrainStorm],
        "sleep-wake" => vec![SleepWake],
        "gateway-flap" => vec![GatewayFlap],
        "controller-kill" => vec![ControllerKill],
        "flash-crowd" => vec![FlashCrowd],
        "all" => vec![
            TrainStorm,
            SleepWake,
            GatewayFlap,
            ControllerKill,
            FlashCrowd,
        ],
        "seeded-violation" => vec![InjectViolation],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_scenario_resolves() {
        for name in SCENARIOS {
            assert!(overlays_for(name).is_some(), "{name} must resolve");
        }
        assert!(overlays_for("seeded-violation").is_some());
        assert!(overlays_for("nope").is_none());
    }

    #[test]
    fn all_stacks_every_regression_overlay() {
        let all = overlays_for("all").unwrap();
        assert_eq!(all.len(), 5);
        assert!(!all.contains(&OverlayKind::InjectViolation));
    }
}
