//! Epochs, controller identity and replicated cluster membership.
//!
//! SoftCell leaves controller replication to "standard replication
//! techniques" (paper §5); this module supplies the deterministic core
//! those techniques need. An **epoch** is a monotonically increasing
//! term number: every membership change (a controller dying or being
//! readmitted) advances it, and every replicated log record carries the
//! epoch it was proposed under. A proposal stamped with an old epoch is
//! *fenced* — rejected by every peer — so a partitioned former leader
//! can never get state (and therefore flow-mods) acknowledged.
//!
//! Leadership is a pure function of the membership view: region `r`'s
//! home seat is `r` itself, and its leader is the first **live** seat
//! scanning the ring from the home seat. Two nodes with the same
//! [`Membership`] therefore always agree on every region's leader
//! without any extra coordination — which is what lets agents re-home
//! deterministically after a failure.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Error, Result};
use crate::ids::BaseStationId;
use crate::shard::shard_of_station;

/// Identity of one controller replica: its *seat* in the membership
/// ring. Seats are dense (`0..n`) and never renumbered; a dead seat
/// stays in the ring marked not-live so leadership stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ControllerId(pub u32);

impl ControllerId {
    /// The seat index as a usize, for indexing seat-ordered tables.
    pub fn seat(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ControllerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctl{}", self.0)
    }
}

/// A compare-and-swap fenced epoch counter.
///
/// The fence is the single authority on "which term is current" within
/// one process. Promotion is `advance(observed, observed + 1)`: exactly
/// one contender can win any given transition, so two standbys racing
/// to promote resolve without a split-brain window — the loser's CAS
/// fails and it demotes itself. Orderings are `AcqRel`/`Acquire`: a
/// winner's subsequent writes happen-after every reader's observation
/// of the new epoch.
#[derive(Debug)]
pub struct EpochFence {
    current: AtomicU64,
}

impl EpochFence {
    /// A fence starting at `epoch`.
    pub fn new(epoch: u64) -> EpochFence {
        EpochFence {
            current: AtomicU64::new(epoch),
        }
    }

    /// The current epoch.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// Attempts to advance the fence from `from` to `to`
    /// (`to > from`). Returns the new epoch on success; on failure the
    /// actual current epoch, which the caller must adopt (it has been
    /// fenced by a concurrent or later advance).
    pub fn advance(&self, from: u64, to: u64) -> Result<u64, u64> {
        if to <= from {
            // A no-op or backwards advance is always a fencing failure.
            return Err(self.current());
        }
        match self
            .current
            .compare_exchange(from, to, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => Ok(to),
            Err(actual) => Err(actual),
        }
    }

    /// Raises the fence to `epoch` if it is higher than the current
    /// value (used when learning of a newer term from a peer). Returns
    /// the resulting current epoch.
    pub fn observe(&self, epoch: u64) -> u64 {
        let mut cur = self.current.load(Ordering::Acquire);
        while epoch > cur {
            match self.current.compare_exchange_weak(
                cur,
                epoch,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return epoch,
                Err(actual) => cur = actual,
            }
        }
        cur
    }
}

/// One replicated membership view: the epoch it was established in,
/// the fixed seat ring, and which seats are live.
///
/// Views are plain values — they are shipped between controllers in
/// epoch-change messages and compared structurally. All leadership
/// queries are pure functions of the view, so any two holders of an
/// equal view agree on every answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    epoch: u64,
    live: Vec<bool>,
}

impl Membership {
    /// A fresh view: `seats` controllers, all live, epoch 1.
    /// (Epoch 0 is reserved as "before any view" so a zeroed wire field
    /// is never a valid term.)
    pub fn bootstrap(seats: usize) -> Result<Membership> {
        if seats == 0 {
            return Err(Error::Config("membership needs at least one seat".into()));
        }
        Ok(Membership {
            epoch: 1,
            live: vec![true; seats],
        })
    }

    /// Reconstructs a view from its wire representation.
    pub fn from_parts(epoch: u64, live: Vec<bool>) -> Result<Membership> {
        if live.is_empty() {
            return Err(Error::Malformed("membership with zero seats".into()));
        }
        if epoch == 0 {
            return Err(Error::Malformed("membership epoch 0 is reserved".into()));
        }
        Ok(Membership { epoch, live })
    }

    /// The epoch this view was established in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of seats in the ring (live or dead).
    pub fn seats(&self) -> usize {
        self.live.len()
    }

    /// Liveness flags in seat order (wire representation).
    pub fn live_flags(&self) -> &[bool] {
        &self.live
    }

    /// Whether `id` is a live seat in this view.
    pub fn is_live(&self, id: ControllerId) -> bool {
        self.live.get(id.seat()).copied().unwrap_or(false)
    }

    /// Number of live seats.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// The successor view after declaring `dead` seats down: same ring,
    /// epoch advanced by one. Declaring an unknown seat is an error;
    /// declaring an already-dead seat is idempotent.
    pub fn advance(&self, dead: &[ControllerId]) -> Result<Membership> {
        let mut live = self.live.clone();
        for id in dead {
            let slot = live
                .get_mut(id.seat())
                .ok_or_else(|| Error::Range(format!("{id} is not a seat in this ring")))?;
            *slot = false;
        }
        if !live.iter().any(|l| *l) {
            return Err(Error::InvalidState(
                "membership change would leave no live seats".into(),
            ));
        }
        Ok(Membership {
            epoch: self.epoch + 1,
            live,
        })
    }

    /// The region a base station belongs to (its home seat index).
    /// Regions partition stations across the full ring, dead seats
    /// included, so region assignment never moves when liveness changes
    /// — only leadership does.
    pub fn region_of(&self, bs: BaseStationId) -> usize {
        shard_of_station(bs, self.live.len())
    }

    /// The current leader of `region`: the first live seat scanning the
    /// ring from the region's home seat. `None` only if no seat is live
    /// (unreachable for views built through [`Membership::advance`]).
    pub fn leader_of_region(&self, region: usize) -> Option<ControllerId> {
        let n = self.live.len();
        (0..n)
            .map(|off| (region + off) % n)
            .find(|&seat| self.live[seat])
            .map(|seat| ControllerId(seat as u32))
    }

    /// The leader responsible for `bs` under this view.
    pub fn leader_of_station(&self, bs: BaseStationId) -> Option<ControllerId> {
        self.leader_of_region(self.region_of(bs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fence_advances_once_per_transition() {
        let fence = Arc::new(EpochFence::new(1));
        let winners: Vec<_> = (0..8)
            .map(|_| {
                let f = Arc::clone(&fence);
                std::thread::spawn(move || f.advance(1, 2).is_ok())
            })
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert_eq!(winners.iter().filter(|w| **w).count(), 1);
        assert_eq!(fence.current(), 2);
    }

    #[test]
    fn fence_rejects_stale_and_backwards_advances() {
        let fence = EpochFence::new(5);
        assert_eq!(fence.advance(4, 6), Err(5));
        assert_eq!(fence.advance(5, 5), Err(5));
        assert_eq!(fence.advance(5, 4), Err(5));
        assert_eq!(fence.advance(5, 6), Ok(6));
    }

    #[test]
    fn fence_observe_is_monotonic() {
        let fence = EpochFence::new(3);
        assert_eq!(fence.observe(2), 3);
        assert_eq!(fence.observe(7), 7);
        assert_eq!(fence.observe(5), 7);
    }

    #[test]
    fn leadership_moves_to_ring_successor_and_back() {
        let m = Membership::bootstrap(3).expect("3 seats");
        assert_eq!(m.leader_of_region(1), Some(ControllerId(1)));
        let m2 = m.advance(&[ControllerId(1)]).expect("kill seat 1");
        assert_eq!(m2.epoch(), 2);
        assert_eq!(m2.leader_of_region(1), Some(ControllerId(2)));
        // Region 0's leader is unaffected by seat 1 dying.
        assert_eq!(m2.leader_of_region(0), Some(ControllerId(0)));
        // Wrap-around: kill seat 2 as well, region 1 wraps to seat 0.
        let m3 = m2.advance(&[ControllerId(2)]).expect("kill seat 2");
        assert_eq!(m3.leader_of_region(1), Some(ControllerId(0)));
    }

    #[test]
    fn advance_refuses_to_empty_the_ring() {
        let m = Membership::bootstrap(2).expect("2 seats");
        let m2 = m.advance(&[ControllerId(0)]).expect("one left");
        assert!(m2.advance(&[ControllerId(1)]).is_err());
        assert!(m.advance(&[ControllerId(7)]).is_err());
    }

    #[test]
    fn region_assignment_is_liveness_independent() {
        let m = Membership::bootstrap(4).expect("4 seats");
        let m2 = m.advance(&[ControllerId(3)]).expect("kill seat 3");
        for bs in 0..64u32 {
            let bs = BaseStationId(bs);
            assert_eq!(m.region_of(bs), m2.region_of(bs));
        }
    }

    #[test]
    fn equal_views_agree_on_every_leader() {
        let a = Membership::bootstrap(5)
            .and_then(|m| m.advance(&[ControllerId(2)]))
            .expect("view");
        let b = Membership::from_parts(a.epoch(), a.live_flags().to_vec()).expect("clone");
        for region in 0..5 {
            assert_eq!(a.leader_of_region(region), b.leader_of_region(region));
        }
    }
}
