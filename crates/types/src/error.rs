//! The shared error type.
//!
//! SoftCell components are state machines that can fail in a small number
//! of structured ways (bad configuration, out-of-range identifier, parse
//! failure, resource exhaustion, missing entity). A single workspace-wide
//! error enum keeps `?` flowing across crate boundaries without a tower of
//! conversion impls.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Workspace-wide error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Invalid static configuration (bit splits, topology parameters...).
    Config(String),
    /// An identifier or value outside its valid range.
    Range(String),
    /// Failed to parse textual or wire input.
    Parse(String),
    /// A finite resource (tags, UE IDs, table space) is exhausted.
    Exhausted(String),
    /// A referenced entity does not exist.
    NotFound(String),
    /// An operation is invalid in the current state.
    InvalidState(String),
    /// A packet was malformed or truncated.
    Malformed(String),
    /// No feasible path satisfies the request (paper §7, on-path
    /// middleboxes: "the policy path request will be denied").
    NoPath(String),
    /// A deadline elapsed before the operation completed. Unlike the
    /// other variants this one is *retryable*: the control channel's
    /// retry machinery keys off [`Error::is_timeout`].
    Timeout(String),
}

impl Error {
    /// Whether this error is a deadline expiry — the only error class a
    /// control-channel client may retry under the same transaction id.
    pub fn is_timeout(&self) -> bool {
        matches!(self, Error::Timeout(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Range(m) => write!(f, "out of range: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Exhausted(m) => write!(f, "resource exhausted: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::Malformed(m) => write!(f, "malformed packet: {m}"),
            Error::NoPath(m) => write!(f, "no feasible path: {m}"),
            Error::Timeout(m) => write!(f, "deadline exceeded: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Config("bad split".into());
        assert_eq!(e.to_string(), "configuration error: bad split");
        let e = Error::NoPath("firewall unreachable".into());
        assert!(e.to_string().contains("no feasible path"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Parse("x".into()));
    }
}
