//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! The Figure 7 experiments hash tens of millions of small keys
//! (prefixes, tags, switch ids); SipHash's DoS resistance buys nothing
//! there and costs ~3× the cycles. This is the well-known `fxhash`
//! multiply-xor scheme (as used by rustc), implemented locally to keep
//! the dependency set to the approved list.
//!
//! Only use for internal data structures keyed by trusted, fixed-width
//! values — never for attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias using the fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` alias using the fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The fx multiply-xor hasher.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_usually_distinct_hashes() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on sequential u64s");
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u16> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a test");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is a tesu");
        assert_ne!(a.finish(), c.finish());
    }
}
