//! Strongly-typed identifiers for network entities.
//!
//! Every entity a SoftCell controller reasons about — switches, base
//! stations, UEs, middleboxes, flows — gets its own newtype so that the
//! compiler rejects accidental cross-assignment (e.g. indexing a switch
//! table with a base-station number). All identifiers are plain integers
//! underneath, `Copy`, ordered and hashable, so they can key dense `Vec`
//! tables as well as hash maps.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty), $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value of this identifier.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a raw index (inverse of [`Self::index`]).
            #[inline]
            pub const fn from_index(index: usize) -> Self {
                Self(index as $inner)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A switch in the cellular core (access, aggregation, core or gateway).
    SwitchId(u32),
    "sw"
);

id_type!(
    /// A base station (eNodeB). Each base station hosts one access switch
    /// and one local agent.
    BaseStationId(u32),
    "bs"
);

id_type!(
    /// The *local* UE identifier, unique only within one base station.
    ///
    /// Together with the base-station prefix this forms the hierarchical
    /// location-dependent address (LocIP, paper §3.1). It is reassigned
    /// when the UE moves to a different base station.
    UeId(u16),
    "ue"
);

id_type!(
    /// The *global*, permanent subscriber identity (IMSI-like). Never
    /// changes; used by the controller to look up subscriber attributes.
    UeImsi(u64),
    "imsi"
);

id_type!(
    /// A middlebox *instance* (a specific firewall box, a specific
    /// transcoder VM). Several instances may share a [`MiddleboxKind`].
    MiddleboxId(u32),
    "mb"
);

id_type!(
    /// A gateway switch connecting the core network to the Internet.
    GatewayId(u32),
    "gw"
);

id_type!(
    /// A switch port number. Port 0 is reserved for the local/CPU port.
    PortNo(u16),
    "p"
);

id_type!(
    /// A unidirectional link in the topology graph.
    LinkId(u32),
    "ln"
);

id_type!(
    /// A transport-level flow (one direction of a connection) as tracked by
    /// the simulator and the local agent's microflow table.
    FlowId(u64),
    "fl"
);

/// The *function* a middlebox performs. Service-policy actions name kinds;
/// the controller picks concrete [`MiddleboxId`] instances (paper §2.2:
/// "the action does not indicate a specific instance").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum MiddleboxKind {
    /// Stateful firewall.
    Firewall,
    /// Video transcoder.
    Transcoder,
    /// Echo-cancellation gateway for voice traffic.
    EchoCanceller,
    /// Intrusion detection system (needs per-UE flow grouping, §3.1).
    IntrusionDetection,
    /// HTTP cache / web proxy.
    WebCache,
    /// Lawful-intercept tap.
    LawfulIntercept,
    /// Carrier-grade NAT (§4.1 privacy discussion).
    Nat,
    /// Header-enrichment / billing gateway.
    BillingGateway,
    /// Parental-control content filter.
    ContentFilter,
    /// TCP optimizer / performance-enhancing proxy.
    TcpOptimizer,
    /// A synthetic kind used by the large-scale simulations, which need
    /// `k` distinct kinds for a parameter-`k` topology (paper §6.3).
    Synthetic(u16),
}

impl MiddleboxKind {
    /// Enumerates `n` distinct kinds, using the named kinds first and
    /// synthetic kinds beyond them. Used by topology generators.
    pub fn enumerate(n: usize) -> Vec<MiddleboxKind> {
        const NAMED: [MiddleboxKind; 10] = [
            MiddleboxKind::Firewall,
            MiddleboxKind::Transcoder,
            MiddleboxKind::EchoCanceller,
            MiddleboxKind::IntrusionDetection,
            MiddleboxKind::WebCache,
            MiddleboxKind::LawfulIntercept,
            MiddleboxKind::Nat,
            MiddleboxKind::BillingGateway,
            MiddleboxKind::ContentFilter,
            MiddleboxKind::TcpOptimizer,
        ];
        (0..n)
            .map(|i| {
                if i < NAMED.len() {
                    NAMED[i]
                } else {
                    MiddleboxKind::Synthetic((i - NAMED.len()) as u16)
                }
            })
            .collect()
    }
}

impl fmt::Display for MiddleboxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddleboxKind::Synthetic(i) => write!(f, "synthetic-{i}"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_round_trips_through_index() {
        let sw = SwitchId(42);
        assert_eq!(SwitchId::from_index(sw.index()), sw);
        let ue = UeId(9);
        assert_eq!(UeId::from_index(ue.index()), ue);
    }

    #[test]
    fn id_display_includes_prefix() {
        assert_eq!(SwitchId(3).to_string(), "sw3");
        assert_eq!(BaseStationId(7).to_string(), "bs7");
        assert_eq!(UeImsi(123).to_string(), "imsi123");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(SwitchId(1) < SwitchId(2));
        assert!(FlowId(10) > FlowId(9));
    }

    #[test]
    fn middlebox_kinds_enumerate_distinct() {
        let kinds = MiddleboxKind::enumerate(25);
        assert_eq!(kinds.len(), 25);
        let set: HashSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), 25, "kinds must be pairwise distinct");
    }

    #[test]
    fn middlebox_kind_display_is_lowercase() {
        assert_eq!(MiddleboxKind::Firewall.to_string(), "firewall");
        assert_eq!(MiddleboxKind::Synthetic(2).to_string(), "synthetic-2");
    }

    #[test]
    fn enumerate_starts_with_named_kinds() {
        let kinds = MiddleboxKind::enumerate(3);
        assert_eq!(
            kinds,
            vec![
                MiddleboxKind::Firewall,
                MiddleboxKind::Transcoder,
                MiddleboxKind::EchoCanceller
            ]
        );
    }
}
