//! Shard keys and per-shard range allocation for the sharded controller.
//!
//! SoftCell's control load is shardable by UE: every per-subscriber
//! operation (attach, detach, microflow decisions) touches only that
//! UE's state, so partitioning by a hash of the IMSI lets N worker
//! shards run without coordination. Station-scoped state (local UE-id
//! counters, tag caches) shards by a hash of the base-station id
//! instead; an operation spanning both domains (a handoff between
//! stations owned by different shards) uses an explicit rendezvous.
//!
//! Finite identifier spaces shared by all shards — policy tags, the
//! permanent-address pool — are split into per-shard *ranges* by
//! [`RangePool`]/[`ShardRange`] so the allocation hot path never takes a
//! cross-shard lock: each shard draws from a private block and returns
//! to the shared pool only when a block is exhausted (refill) or fully
//! freed (spill). Exhaustion in one shard is served from blocks other
//! shards have spilled back — "range stealing" — and the pool hands
//! every value out at most once, so two shards can never hold the same
//! value concurrently.

use std::sync::{Arc, Mutex};

use crate::fxhash::FxHasher;
use crate::ids::{BaseStationId, UeImsi};
use std::hash::Hasher;

/// The shard owning a UE's state: `fxhash(imsi) mod shards`.
pub fn shard_of_ue(imsi: UeImsi, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = FxHasher::default();
    h.write_u64(imsi.0);
    (h.finish() % shards as u64) as usize
}

/// The shard owning a base station's state: `fxhash(bs) mod shards`.
pub fn shard_of_station(bs: BaseStationId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = FxHasher::default();
    h.write_u32(bs.0);
    (h.finish() % shards as u64) as usize
}

/// A contiguous, half-open block of identifier space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Block {
    start: u32,
    end: u32,
}

/// The shared coordinator of one identifier space (`0..capacity`,
/// offset-free — callers add their own base). Holds blocks no shard
/// currently owns: the initially-unassigned tail plus any blocks shards
/// spilled back. Shards touch it only on block refill/spill, never per
/// allocation.
#[derive(Debug)]
pub struct RangePool {
    inner: Mutex<PoolInner>,
    block: u32,
}

#[derive(Debug)]
struct PoolInner {
    /// Start of the never-yet-assigned tail.
    fresh: u32,
    capacity: u32,
    /// Blocks returned by shards, reusable by any shard (the stealing
    /// path).
    spilled: Vec<Block>,
}

impl RangePool {
    /// Creates a pool over `0..capacity`, handing out blocks of
    /// `block_size` values (the last fresh block may be short).
    pub fn new(capacity: u32, block_size: u32) -> Arc<RangePool> {
        assert!(block_size > 0, "block size must be positive");
        Arc::new(RangePool {
            inner: Mutex::new(PoolInner {
                fresh: 0,
                capacity,
                spilled: Vec::new(),
            }),
            block: block_size,
        })
    }

    /// Total value space.
    pub fn capacity(&self) -> u32 {
        self.inner.lock().expect("pool poisoned").capacity
    }

    /// Takes one block for a shard, preferring spilled blocks (so a
    /// starved shard reuses space other shards freed) over fresh space.
    /// The flag reports provenance: `true` when the block came from
    /// another shard's spill (the stealing path), `false` for fresh
    /// space.
    fn grab(&self) -> Option<(Block, bool)> {
        let mut inner = self.inner.lock().expect("pool poisoned");
        if let Some(b) = inner.spilled.pop() {
            return Some((b, true));
        }
        if inner.fresh < inner.capacity {
            let start = inner.fresh;
            let end = inner.capacity.min(start.saturating_add(self.block));
            inner.fresh = end;
            return Some((Block { start, end }, false));
        }
        None
    }

    fn spill(&self, b: Block) {
        self.inner.lock().expect("pool poisoned").spilled.push(b);
    }
}

/// One shard's private handle on a [`RangePool`]: a current block plus a
/// local free list. `allocate` and `release` are lock-free with respect
/// to other shards except when a block boundary is crossed.
#[derive(Debug)]
pub struct ShardRange {
    pool: Arc<RangePool>,
    cur: Option<Block>,
    next: u32,
    free: Vec<u32>,
    /// Values currently held by this shard (allocated − released); when
    /// it reaches zero the shard spills its block back to the pool so
    /// other shards can steal it.
    live: usize,
    /// Blocks this shard took from other shards' spills.
    steals: u64,
}

impl ShardRange {
    /// Creates a shard handle over the shared pool.
    pub fn new(pool: Arc<RangePool>) -> ShardRange {
        ShardRange {
            pool,
            cur: None,
            next: 0,
            free: Vec::new(),
            live: 0,
            steals: 0,
        }
    }

    /// Allocates one value. Prefers this shard's free list, then its
    /// current block, then grabs a new block from the pool (which is
    /// where exhaustion in this shard steals space other shards
    /// spilled). Returns `None` only when the whole space is exhausted.
    pub fn allocate(&mut self) -> Option<u32> {
        if let Some(v) = self.free.pop() {
            self.live += 1;
            return Some(v);
        }
        loop {
            if let Some(b) = self.cur {
                if self.next < b.end {
                    let v = self.next;
                    self.next += 1;
                    self.live += 1;
                    return Some(v);
                }
            }
            let (b, stolen) = self.pool.grab()?;
            if stolen {
                self.steals += 1;
            }
            self.next = b.start;
            self.cur = Some(b);
        }
    }

    /// Returns a value to this shard. Surplus free values spill back to
    /// the shared pool — whenever the local free list outgrows one block,
    /// and entirely when the shard holds no live values — so a starved
    /// shard can steal them; at most one block's worth of frees stays
    /// local for fast reuse.
    pub fn release(&mut self, v: u32) {
        debug_assert!(!self.free.contains(&v), "double release of {v}");
        self.free.push(v);
        self.live = self.live.saturating_sub(1);
        if self.live == 0 {
            // fully idle: the unused block tail and every freed value go
            // back to the pool
            if let Some(b) = self.cur.take() {
                if self.next < b.end {
                    self.pool.spill(Block {
                        start: self.next,
                        end: b.end,
                    });
                }
            }
            for v in self.free.drain(..) {
                self.pool.spill(Block {
                    start: v,
                    end: v + 1,
                });
            }
        } else if self.free.len() > self.pool.block as usize {
            for v in self.free.drain(..) {
                self.pool.spill(Block {
                    start: v,
                    end: v + 1,
                });
            }
        }
    }

    /// Values currently held live by this shard.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Blocks this shard has taken from other shards' spills — how often
    /// local exhaustion was served by range stealing.
    pub fn steals(&self) -> u64 {
        self.steals
    }
}

/// Lock striping for UE-keyed shared state: `stripes` independent
/// mutexes, each guarding the slice of keys that hash to it. Turns one
/// global mutex (every shard serializes) into per-stripe contention —
/// two workers collide only when their UEs share a stripe. The stripe
/// function is [`shard_of_ue`], so a deployment striping by its shard
/// count gets zero cross-worker contention on UE-local operations.
#[derive(Debug)]
pub struct Striped<T> {
    stripes: Vec<Mutex<T>>,
}

impl<T: Default> Striped<T> {
    /// Creates `stripes` default-initialized stripes (at least one).
    pub fn new(stripes: usize) -> Striped<T> {
        Striped {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(T::default()))
                .collect(),
        }
    }
}

impl<T> Striped<T> {
    /// Locks the stripe owning `imsi`'s state.
    pub fn for_ue(&self, imsi: UeImsi) -> std::sync::MutexGuard<'_, T> {
        let stripe = &self.stripes[shard_of_ue(imsi, self.stripes.len())];
        stripe.lock().expect("stripe poisoned")
    }

    /// Locks each stripe in turn and folds `f` over the guarded values —
    /// for whole-map queries (counts, dumps) off the hot path. Never
    /// holds two stripes at once.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &T) -> A) -> A {
        let mut acc = init;
        for stripe in &self.stripes {
            let guard = stripe.lock().expect("stripe poisoned");
            acc = f(acc, &guard);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn shard_keys_are_stable_and_in_range() {
        for n in 1..=8usize {
            for i in 0..64u64 {
                let s = shard_of_ue(UeImsi(i), n);
                assert!(s < n);
                assert_eq!(s, shard_of_ue(UeImsi(i), n), "deterministic");
            }
            for b in 0..16u32 {
                assert!(shard_of_station(BaseStationId(b), n) < n);
            }
        }
    }

    #[test]
    fn striped_map_routes_by_ue_and_folds_all() {
        let striped: Striped<std::collections::HashMap<u64, u32>> = Striped::new(4);
        for i in 0..32u64 {
            striped.for_ue(UeImsi(i)).insert(i, i as u32 * 2);
        }
        for i in 0..32u64 {
            assert_eq!(striped.for_ue(UeImsi(i)).get(&i), Some(&(i as u32 * 2)));
        }
        let total = striped.fold(0usize, |acc, m| acc + m.len());
        assert_eq!(total, 32);
    }

    #[test]
    fn single_shard_covers_whole_space() {
        let pool = RangePool::new(10, 4);
        let mut r = ShardRange::new(pool);
        let got: Vec<u32> = std::iter::from_fn(|| r.allocate()).collect();
        assert_eq!(got.len(), 10);
        let set: HashSet<u32> = got.into_iter().collect();
        assert_eq!(set.len(), 10, "no duplicates");
    }

    #[test]
    fn exhausted_shard_steals_spilled_range() {
        let pool = RangePool::new(8, 4);
        let mut a = ShardRange::new(Arc::clone(&pool));
        let mut b = ShardRange::new(Arc::clone(&pool));
        // a takes block 0..4, b takes 4..8; the space is fully assigned
        let av: Vec<u32> = (0..4).map(|_| a.allocate().unwrap()).collect();
        for _ in 0..4 {
            b.allocate().unwrap();
        }
        assert_eq!(b.allocate(), None, "space fully held");
        // a releases everything → its range spills → b can steal it
        for v in av {
            a.release(v);
        }
        let stolen: Vec<u32> = (0..4).map(|_| b.allocate().unwrap()).collect();
        assert_eq!(stolen.len(), 4, "b stole a's spilled range");
        assert_eq!(b.allocate(), None);
        assert_eq!(a.steals(), 0, "a only ever drew fresh space");
        assert_eq!(
            b.steals(),
            4,
            "a spilled its values as single-value blocks; b stole each"
        );
    }

    proptest! {
        /// Across random shard counts and interleaved alloc/release
        /// sequences: a value is never live in two shards at once, and
        /// allocation only fails when every value is live somewhere.
        #[test]
        fn ranges_never_overlap(
            shards in 1usize..6,
            block in 1u32..9,
            capacity in 1u32..64,
            script in proptest::collection::vec((0usize..6, any::<bool>()), 0..200),
        ) {
            let pool = RangePool::new(capacity, block);
            let mut handles: Vec<ShardRange> =
                (0..shards).map(|_| ShardRange::new(Arc::clone(&pool))).collect();
            // value → owning shard, the ground truth the pool must respect
            let mut owner: std::collections::HashMap<u32, usize> = Default::default();
            let mut held: Vec<Vec<u32>> = vec![Vec::new(); shards];
            for (pick, do_alloc) in script {
                let s = pick % shards;
                if do_alloc {
                    match handles[s].allocate() {
                        Some(v) => {
                            prop_assert!(v < capacity, "value {v} outside space");
                            prop_assert!(
                                owner.insert(v, s).is_none(),
                                "value {v} live in two shards"
                            );
                            held[s].push(v);
                        }
                        None => {
                            // a shard may fail while values idle in
                            // *other* shards' local free lists (bounded
                            // by one block each); never while the whole
                            // space has spilled space left
                            let live: usize = held.iter().map(Vec::len).sum();
                            let idle = capacity as usize - live;
                            prop_assert!(
                                idle <= shards * block as usize,
                                "failed with {idle} idle values, more than \
                                 one block per shard"
                            );
                        }
                    }
                } else if let Some(v) = held[s].pop() {
                    owner.remove(&v);
                    handles[s].release(v);
                }
            }
            // drain everything, everywhere: exactly the non-live values
            // remain allocatable, each exactly once
            let live: usize = held.iter().map(Vec::len).sum();
            let mut recovered = 0usize;
            for h in &mut handles {
                while let Some(v) = h.allocate() {
                    prop_assert!(owner.insert(v, 99).is_none(), "double allocation of {v}");
                    recovered += 1;
                }
            }
            prop_assert_eq!(recovered + live, capacity as usize);
        }
    }
}
