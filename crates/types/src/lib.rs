//! Core identifier, addressing and time types shared by every SoftCell crate.
//!
//! SoftCell (CoNEXT 2013) routes cellular-core traffic by aggregating
//! forwarding state along three dimensions: the *policy* (a tag naming a
//! middlebox path), the *location* (a hierarchical base-station IP prefix)
//! and the *UE* (a local device identifier). This crate defines the types
//! that name those dimensions, the hierarchical location-dependent address
//! ([`addr::LocIp`]) that combines them, and the small amount of shared
//! infrastructure (errors, simulated time) the rest of the workspace builds
//! on.
//!
//! Nothing here depends on the data plane, the controller or the simulator;
//! the dependency arrow only ever points *towards* this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod epoch;
pub mod error;
pub mod fxhash;
pub mod ids;
pub mod prefix;
pub mod shard;
pub mod tag;
pub mod time;

pub use addr::{AddressingScheme, LocIp, PortEmbedding};
pub use epoch::{ControllerId, EpochFence, Membership};
pub use error::{Error, Result};
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{
    BaseStationId, FlowId, GatewayId, LinkId, MiddleboxId, MiddleboxKind, PortNo, SwitchId, UeId,
    UeImsi,
};
pub use prefix::Ipv4Prefix;
pub use shard::{shard_of_station, shard_of_ue, RangePool, ShardRange, Striped};
pub use tag::{PolicyTag, TagAllocator};
pub use time::{SimDuration, SimTime};
