//! Hierarchical location-dependent addressing (LocIP) and header embedding.
//!
//! SoftCell gives every attached UE *two* addresses (paper §3.1):
//!
//! * a **permanent IP address**, allocated via DHCP on first attach, which
//!   the UE itself sees and which never changes; and
//! * a **location-dependent address** ([`LocIp`]) used for routing inside
//!   the core and towards the Internet, laid out hierarchically as
//!   `[carrier prefix | base-station ID | UE ID]` so that core switches can
//!   aggregate on base-station prefixes.
//!
//! The access switch translates between the two, and additionally embeds
//! the **policy tag** in the transport source port (paper §4.1, Fig. 4), so
//! that return traffic from the Internet implicitly carries the
//! classification result and the gateway edge stays dumb.
//!
//! [`AddressingScheme`] captures the bit split and performs the
//! encode/decode; [`PortEmbedding`] does the same for the tag-in-port
//! layout.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

use crate::error::{Error, Result};
use crate::ids::{BaseStationId, UeId};
use crate::prefix::Ipv4Prefix;
use crate::tag::PolicyTag;

/// A location-dependent address: the (base station, UE) pair a LocIP
/// encodes, before being serialized into an `Ipv4Addr` by a scheme.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct LocIp {
    /// The base station the UE is currently attached to.
    pub base_station: BaseStationId,
    /// The UE's local identifier at that base station.
    pub ue: UeId,
}

impl LocIp {
    /// Convenience constructor.
    pub const fn new(base_station: BaseStationId, ue: UeId) -> Self {
        LocIp { base_station, ue }
    }
}

impl fmt::Display for LocIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.base_station, self.ue)
    }
}

/// The carrier-wide layout of LocIP addresses: a fixed carrier prefix,
/// `bs_bits` bits of base-station ID and `ue_bits` bits of local UE ID.
///
/// ```text
///  |<-- carrier prefix -->|<-- bs_bits -->|<-- ue_bits -->|
///  +----------------------+---------------+---------------+
///  |   e.g. 10/8          | base station  |    UE ID      |
///  +----------------------+---------------+---------------+
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AddressingScheme {
    carrier: Ipv4Prefix,
    bs_bits: u8,
    ue_bits: u8,
}

impl AddressingScheme {
    /// Creates a scheme. The three fields must exactly fill 32 bits:
    /// `carrier.len() + bs_bits + ue_bits == 32`.
    pub fn new(carrier: Ipv4Prefix, bs_bits: u8, ue_bits: u8) -> Result<Self> {
        let total = carrier.len() as u32 + bs_bits as u32 + ue_bits as u32;
        if total != 32 {
            return Err(Error::Config(format!(
                "addressing scheme must fill 32 bits, got {} (carrier /{} + {} bs + {} ue)",
                total,
                carrier.len(),
                bs_bits,
                ue_bits
            )));
        }
        if bs_bits == 0 || ue_bits == 0 {
            return Err(Error::Config(
                "bs_bits and ue_bits must both be nonzero".into(),
            ));
        }
        if bs_bits > 24 || ue_bits > 16 {
            return Err(Error::Config(format!(
                "unreasonable field widths: {bs_bits} bs bits, {ue_bits} ue bits"
            )));
        }
        Ok(AddressingScheme {
            carrier,
            bs_bits,
            ue_bits,
        })
    }

    /// The default scheme used throughout the workspace: carrier `10/8`,
    /// 15 bits of base station (32 768 stations — enough for the paper's
    /// largest k=20 topology with 20 000 stations) and 9 bits of UE
    /// (512 simultaneously-attached UEs per station, matching the measured
    /// 99.999-percentile of 514 active UEs within rounding).
    pub fn default_scheme() -> Self {
        AddressingScheme::new(Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8), 15, 9)
            .expect("default scheme is valid")
    }

    /// A scheme sized for a given station count and per-station UE count.
    /// Leftover bits go to the base-station field (more station headroom).
    pub fn sized_for(carrier: Ipv4Prefix, stations: usize, ues_per_station: usize) -> Result<Self> {
        let bs_needed = usize::BITS - (stations.max(2) - 1).leading_zeros();
        let ue_needed = usize::BITS - (ues_per_station.max(2) - 1).leading_zeros();
        let host_bits = 32 - carrier.len() as u32;
        if bs_needed + ue_needed > host_bits || ue_needed > 16 || bs_needed > 24 {
            return Err(Error::Config(format!(
                "cannot fit {stations} stations x {ues_per_station} UEs under {carrier}"
            )));
        }
        let ue_bits = ue_needed.max(host_bits.saturating_sub(24)); // keep bs_bits <= 24
        let bs_bits = host_bits - ue_bits;
        AddressingScheme::new(carrier, bs_bits as u8, ue_bits as u8)
    }

    /// The carrier's public prefix.
    pub const fn carrier(&self) -> Ipv4Prefix {
        self.carrier
    }

    /// The number of base stations this scheme can address.
    pub const fn max_base_stations(&self) -> u32 {
        1 << self.bs_bits
    }

    /// The number of UEs addressable per base station.
    pub const fn max_ues_per_station(&self) -> u32 {
        1 << self.ue_bits
    }

    /// The prefix length of a base-station prefix (`32 - ue_bits`).
    pub const fn bs_prefix_len(&self) -> u8 {
        32 - self.ue_bits
    }

    /// The aggregate prefix covering base stations `bs >> shift` — e.g.
    /// `shift = 1` covers a pair of adjacent stations. Used by topology
    /// generators to hand clusters of stations aggregatable blocks.
    pub fn station_block(&self, bs: BaseStationId, shift: u8) -> Result<Ipv4Prefix> {
        let base = self.base_station_prefix(bs)?;
        let mut block = base;
        for _ in 0..shift.min(self.bs_bits) {
            block = block.parent().expect("len > 0 by construction");
        }
        Ok(block)
    }

    /// The IP prefix owned by a base station: all LocIPs of UEs attached
    /// there. This is the "base station ID" dimension of the aggregation.
    pub fn base_station_prefix(&self, bs: BaseStationId) -> Result<Ipv4Prefix> {
        if bs.0 >= self.max_base_stations() {
            return Err(Error::Range(format!(
                "{bs} out of range for {}-bit base-station field",
                self.bs_bits
            )));
        }
        let bits = self.carrier.raw_bits() | (bs.0 << self.ue_bits);
        Ok(Ipv4Prefix::from_bits(bits, self.bs_prefix_len()))
    }

    /// Encodes a LocIP into a routable IPv4 address.
    pub fn encode(&self, loc: LocIp) -> Result<Ipv4Addr> {
        if loc.ue.0 as u32 >= self.max_ues_per_station() {
            return Err(Error::Range(format!(
                "{} out of range for {}-bit UE field",
                loc.ue, self.ue_bits
            )));
        }
        let prefix = self.base_station_prefix(loc.base_station)?;
        Ok(Ipv4Addr::from(prefix.raw_bits() | loc.ue.0 as u32))
    }

    /// Decodes an IPv4 address back into (base station, UE). Fails if the
    /// address is not under the carrier prefix.
    pub fn decode(&self, addr: Ipv4Addr) -> Result<LocIp> {
        if !self.carrier.contains(addr) {
            return Err(Error::Range(format!(
                "{addr} is not a LocIP under carrier {}",
                self.carrier
            )));
        }
        let bits = u32::from(addr);
        let ue_mask = (1u32 << self.ue_bits) - 1;
        let bs_mask = (1u32 << self.bs_bits) - 1;
        Ok(LocIp {
            base_station: BaseStationId((bits >> self.ue_bits) & bs_mask),
            ue: UeId((bits & ue_mask) as u16),
        })
    }

    /// Whether `addr` is a LocIP (i.e. under the carrier prefix).
    pub fn is_loc_ip(&self, addr: Ipv4Addr) -> bool {
        self.carrier.contains(addr)
    }
}

/// Layout of the policy tag inside the 16-bit transport source port
/// (paper §4.1, Fig. 4): the tag occupies the *high* `tag_bits`, the low
/// bits remain available to disambiguate concurrent flows of one UE.
///
/// "UEs do not have many active flows, leaving plenty of room for carrying
/// the policy tag in the port-number field."
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PortEmbedding {
    tag_bits: u8,
}

impl PortEmbedding {
    /// Creates an embedding with `tag_bits` bits of tag (1..=12).
    pub fn new(tag_bits: u8) -> Result<Self> {
        if tag_bits == 0 || tag_bits > 12 {
            return Err(Error::Config(format!(
                "tag_bits must be in 1..=12, got {tag_bits}"
            )));
        }
        Ok(PortEmbedding { tag_bits })
    }

    /// Default: 10 bits of tag (1024 policy paths' worth of tags visible
    /// at any switch), 6 bits / 64 slots of concurrent flows per UE.
    pub fn default_embedding() -> Self {
        PortEmbedding { tag_bits: 10 }
    }

    /// Number of distinct tags representable.
    pub const fn max_tags(&self) -> u16 {
        1 << self.tag_bits
    }

    /// Number of flow slots per (UE, tag).
    pub const fn flow_slots(&self) -> u16 {
        1 << (16 - self.tag_bits)
    }

    /// Encodes `(tag, flow_slot)` into a source port.
    pub fn encode(&self, tag: PolicyTag, flow_slot: u16) -> Result<u16> {
        if tag.0 >= self.max_tags() {
            return Err(Error::Range(format!(
                "{tag} out of range for {}-bit tag field",
                self.tag_bits
            )));
        }
        if flow_slot >= self.flow_slots() {
            return Err(Error::Range(format!(
                "flow slot {flow_slot} out of range ({} slots)",
                self.flow_slots()
            )));
        }
        Ok((tag.0 << (16 - self.tag_bits)) | flow_slot)
    }

    /// Decodes a source port into `(tag, flow_slot)`.
    pub fn decode(&self, port: u16) -> (PolicyTag, u16) {
        let tag = port >> (16 - self.tag_bits);
        let slot = port & (self.flow_slots() - 1);
        (PolicyTag(tag), slot)
    }

    /// The wildcard (value, mask) pair matching *all* ports carrying `tag`,
    /// for installation into TCAM rules.
    pub fn tag_match(&self, tag: PolicyTag) -> (u16, u16) {
        let shift = 16 - self.tag_bits;
        (tag.0 << shift, u16::MAX << shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_scheme_fills_32_bits() {
        let s = AddressingScheme::default_scheme();
        assert_eq!(s.carrier().len(), 8);
        assert_eq!(s.max_base_stations(), 32768);
        assert_eq!(s.max_ues_per_station(), 512);
        assert_eq!(s.bs_prefix_len(), 23);
    }

    #[test]
    fn scheme_rejects_bad_splits() {
        let carrier = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        assert!(AddressingScheme::new(carrier, 10, 10).is_err()); // 28 != 32
        assert!(AddressingScheme::new(carrier, 24, 0).is_err()); // zero ue
    }

    #[test]
    fn encode_decode_example() {
        // Paper §4.2 example: UE 10 at base station with prefix 10.0.0.0/16
        // gets LocIP 10.0.0.10.
        let carrier = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        let s = AddressingScheme::new(carrier, 8, 16).unwrap();
        let loc = LocIp::new(BaseStationId(0), UeId(10));
        assert_eq!(s.encode(loc).unwrap(), Ipv4Addr::new(10, 0, 0, 10));
        assert_eq!(
            s.base_station_prefix(BaseStationId(0)).unwrap().to_string(),
            "10.0.0.0/16"
        );
        assert_eq!(s.decode(Ipv4Addr::new(10, 0, 0, 10)).unwrap(), loc);
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let s = AddressingScheme::default_scheme();
        assert!(s
            .encode(LocIp::new(BaseStationId(1 << 15), UeId(0)))
            .is_err());
        assert!(s.encode(LocIp::new(BaseStationId(0), UeId(512))).is_err());
        assert!(s.decode(Ipv4Addr::new(11, 0, 0, 1)).is_err());
    }

    #[test]
    fn station_prefixes_are_disjoint_and_aggregatable() {
        let s = AddressingScheme::default_scheme();
        let p0 = s.base_station_prefix(BaseStationId(0)).unwrap();
        let p1 = s.base_station_prefix(BaseStationId(1)).unwrap();
        let p2 = s.base_station_prefix(BaseStationId(2)).unwrap();
        assert!(!p0.overlaps(&p1));
        // adjacent even/odd stations are siblings — the topology generator
        // relies on this to give clusters aggregatable blocks
        assert!(p0.is_contiguous_with(&p1));
        assert!(!p1.is_contiguous_with(&p2));
        assert_eq!(
            s.station_block(BaseStationId(0), 1).unwrap(),
            p0.aggregate(&p1).unwrap()
        );
    }

    #[test]
    fn sized_for_picks_minimal_bits() {
        let carrier = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        let s = AddressingScheme::sized_for(carrier, 20000, 500).unwrap();
        assert!(s.max_base_stations() >= 20000);
        assert!(s.max_ues_per_station() >= 500);
        // 20000 stations x 600 UEs needs 15 + 10 = 25 host bits; only 24
        // are available under a /8, so this must be rejected.
        assert!(AddressingScheme::sized_for(carrier, 20000, 600).is_err());
        assert!(AddressingScheme::sized_for(carrier, 1 << 20, 1 << 10).is_err());
    }

    #[test]
    fn port_embedding_round_trip() {
        let e = PortEmbedding::default_embedding();
        assert_eq!(e.max_tags(), 1024);
        assert_eq!(e.flow_slots(), 64);
        let port = e.encode(PolicyTag(2), 5).unwrap();
        assert_eq!(e.decode(port), (PolicyTag(2), 5));
    }

    #[test]
    fn port_tag_match_covers_all_slots() {
        let e = PortEmbedding::default_embedding();
        let (value, mask) = e.tag_match(PolicyTag(7));
        for slot in 0..e.flow_slots() {
            let port = e.encode(PolicyTag(7), slot).unwrap();
            assert_eq!(port & mask, value);
        }
        let other = e.encode(PolicyTag(8), 0).unwrap();
        assert_ne!(other & mask, value);
    }

    proptest! {
        #[test]
        fn prop_locip_round_trips(bs in 0u32..32768, ue in 0u16..512) {
            let s = AddressingScheme::default_scheme();
            let loc = LocIp::new(BaseStationId(bs), UeId(ue));
            let addr = s.encode(loc).unwrap();
            prop_assert!(s.is_loc_ip(addr));
            prop_assert_eq!(s.decode(addr).unwrap(), loc);
        }

        #[test]
        fn prop_locip_lands_in_station_prefix(bs in 0u32..32768, ue in 0u16..512) {
            let s = AddressingScheme::default_scheme();
            let addr = s.encode(LocIp::new(BaseStationId(bs), UeId(ue))).unwrap();
            let pref = s.base_station_prefix(BaseStationId(bs)).unwrap();
            prop_assert!(pref.contains(addr));
        }

        #[test]
        fn prop_port_round_trips(tag in 0u16..1024, slot in 0u16..64) {
            let e = PortEmbedding::default_embedding();
            let port = e.encode(PolicyTag(tag), slot).unwrap();
            prop_assert_eq!(e.decode(port), (PolicyTag(tag), slot));
        }
    }
}
