//! Policy tags and tag allocation.
//!
//! A policy tag names a *policy path* equivalence class: all flows that
//! must traverse the same sequence of middlebox instances may share a tag,
//! letting core switches forward on a single exact-match rule instead of
//! per-flow state (paper §3.1, "aggregation by policy"). Tags are carried
//! in the transport source port (see [`crate::addr::PortEmbedding`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A policy tag. The number of usable tags is bounded by the port
/// embedding in use (default 10 bits → 1024 tags).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PolicyTag(pub u16);

impl PolicyTag {
    /// Returns the raw tag value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for PolicyTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

impl fmt::Display for PolicyTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// Allocates tags from the finite tag space, recycling released tags.
///
/// The controller allocates a fresh tag whenever Algorithm 1 finds no
/// reusable candidate (`tag* = new tag`, line 10), and releases tags when
/// the last policy path using them is torn down.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TagAllocator {
    capacity: u16,
    next: u16,
    free: Vec<PolicyTag>,
}

impl TagAllocator {
    /// Creates an allocator over tags `0..capacity`.
    pub fn new(capacity: u16) -> Self {
        TagAllocator {
            capacity,
            next: 0,
            free: Vec::new(),
        }
    }

    /// Total tag space size.
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// Number of tags currently allocated.
    pub fn allocated(&self) -> usize {
        self.next as usize - self.free.len()
    }

    /// Allocates a tag, preferring recycled ones. Returns `None` when the
    /// tag space is exhausted — the caller must then fall back to flat
    /// (per-flow) rules or reject the policy path.
    pub fn allocate(&mut self) -> Option<PolicyTag> {
        if let Some(tag) = self.free.pop() {
            return Some(tag);
        }
        if self.next < self.capacity {
            let tag = PolicyTag(self.next);
            self.next += 1;
            Some(tag)
        } else {
            None
        }
    }

    /// Returns a tag to the pool.
    ///
    /// # Panics
    /// Panics (in debug builds) if the tag was never allocated or is
    /// released twice — both indicate controller-state corruption.
    pub fn release(&mut self, tag: PolicyTag) {
        debug_assert!(tag.0 < self.next, "releasing never-allocated {tag}");
        debug_assert!(!self.free.contains(&tag), "double release of {tag}");
        self.free.push(tag);
    }

    /// Returns a tag to the pool, reporting instead of corrupting on an
    /// unbalanced release: `false` (and no state change) when the tag was
    /// never allocated or is already free. Callers that cannot prove
    /// balance (raw tunnel-tag refcounts) use this and count failures.
    pub fn try_release(&mut self, tag: PolicyTag) -> bool {
        if tag.0 >= self.next || self.free.contains(&tag) {
            return false;
        }
        self.free.push(tag);
        true
    }

    /// The tag `allocate` would return after `taken` further allocations,
    /// without mutating the allocator. Lets an optimistic planner reserve
    /// a sequence of tags it will only claim at commit time; `None` when
    /// the space would be exhausted at that depth.
    pub fn peek(&self, taken: usize) -> Option<PolicyTag> {
        if taken < self.free.len() {
            return Some(self.free[self.free.len() - 1 - taken]);
        }
        let fresh = (taken - self.free.len()) as u64 + self.next as u64;
        if fresh < self.capacity as u64 {
            Some(PolicyTag(fresh as u16))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_sequentially_then_recycles() {
        let mut a = TagAllocator::new(4);
        let t0 = a.allocate().unwrap();
        let t1 = a.allocate().unwrap();
        assert_eq!((t0, t1), (PolicyTag(0), PolicyTag(1)));
        assert_eq!(a.allocated(), 2);
        a.release(t0);
        assert_eq!(a.allocated(), 1);
        assert_eq!(a.allocate().unwrap(), t0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = TagAllocator::new(2);
        assert!(a.allocate().is_some());
        assert!(a.allocate().is_some());
        assert!(a.allocate().is_none());
        a.release(PolicyTag(1));
        assert_eq!(a.allocate(), Some(PolicyTag(1)));
        assert!(a.allocate().is_none());
    }

    #[test]
    fn peek_previews_allocation_order() {
        let mut a = TagAllocator::new(4);
        let t0 = a.allocate().unwrap();
        let t1 = a.allocate().unwrap();
        a.release(t0);
        a.release(t1);
        // free list pops LIFO, then fresh space, then exhaustion
        for taken in 0..4 {
            let peeked = a.peek(taken);
            assert!(peeked.is_some(), "peek({taken}) within capacity");
        }
        assert_eq!(a.peek(0), Some(t1));
        assert_eq!(a.peek(1), Some(t0));
        assert_eq!(a.peek(2), Some(PolicyTag(2)));
        assert_eq!(a.peek(4), None, "exhausted at depth 4");
        // peek is consistent with actually allocating
        assert_eq!(a.allocate(), Some(t1));
        assert_eq!(a.peek(0), Some(t0));
    }

    #[test]
    fn try_release_rejects_unbalanced() {
        let mut a = TagAllocator::new(4);
        let t = a.allocate().unwrap();
        assert!(!a.try_release(PolicyTag(3)), "never allocated");
        assert!(a.try_release(t));
        assert!(!a.try_release(t), "already free");
        assert_eq!(a.allocated(), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    #[cfg(debug_assertions)]
    fn double_release_panics() {
        let mut a = TagAllocator::new(2);
        let t = a.allocate().unwrap();
        a.release(t);
        a.release(t);
    }
}
