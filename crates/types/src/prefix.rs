//! IPv4 prefixes with the aggregation operations Algorithm 1 relies on.
//!
//! SoftCell's multi-dimensional aggregation merges two forwarding rules if
//! and only if their location prefixes are *contiguous* (paper §3.2) — i.e.
//! they are siblings under a common parent prefix. [`Ipv4Prefix`] provides
//! exactly those operations: containment, sibling/parent navigation and
//! pairwise aggregation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::error::Error;

/// An IPv4 prefix (`address/length`), always stored in canonical form with
/// all host bits cleared.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// The all-matching prefix `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { bits: 0, len: 0 };

    /// Creates a prefix, clearing any set host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub const fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be at most 32");
        let bits = u32::from_be_bytes(addr.octets());
        Ipv4Prefix {
            bits: bits & Self::mask(len),
            len,
        }
    }

    /// Creates a prefix from raw big-endian bits.
    pub const fn from_bits(bits: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be at most 32");
        Ipv4Prefix {
            bits: bits & Self::mask(len),
            len,
        }
    }

    /// A host prefix (`/32`) for a single address.
    pub const fn host(addr: Ipv4Addr) -> Self {
        Self::new(addr, 32)
    }

    /// The network mask for a prefix length.
    const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The base address of the prefix.
    pub const fn network(&self) -> Ipv4Addr {
        let o = self.bits.to_be_bytes();
        Ipv4Addr::new(o[0], o[1], o[2], o[3])
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix.
    pub const fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The raw big-endian network bits.
    pub const fn raw_bits(&self) -> u32 {
        self.bits
    }

    /// Number of addresses covered by this prefix.
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `addr` falls inside this prefix.
    pub const fn contains(&self, addr: Ipv4Addr) -> bool {
        let a = u32::from_be_bytes(addr.octets());
        (a & Self::mask(self.len)) == self.bits
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub const fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.bits & Self::mask(self.len)) == self.bits
    }

    /// Whether the two prefixes share any address.
    pub const fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The enclosing prefix one bit shorter, or `None` for `/0`.
    pub const fn parent(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv4Prefix::from_bits(self.bits, self.len - 1))
        }
    }

    /// The sibling prefix (same length, last prefix bit flipped), or `None`
    /// for `/0` which has no sibling.
    pub const fn sibling(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            let flip = 1u32 << (32 - self.len);
            Some(Ipv4Prefix {
                bits: self.bits ^ flip,
                len: self.len,
            })
        }
    }

    /// Whether `self` and `other` are contiguous — equal-length siblings
    /// that can be replaced by their common parent. This is the exact
    /// merge condition of Algorithm 1 ("aggregate two rules if and only if
    /// their location prefixes are contiguous", paper §3.2).
    pub fn is_contiguous_with(&self, other: &Ipv4Prefix) -> bool {
        self.len == other.len && self.len > 0 && self.sibling() == Some(*other)
    }

    /// Merges two contiguous prefixes into their parent; `None` if they are
    /// not contiguous.
    pub fn aggregate(&self, other: &Ipv4Prefix) -> Option<Ipv4Prefix> {
        if self.is_contiguous_with(other) {
            self.parent()
        } else {
            None
        }
    }

    /// The two child prefixes one bit longer, or `None` for `/32`.
    pub const fn children(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len == 32 {
            None
        } else {
            let left = Ipv4Prefix {
                bits: self.bits,
                len: self.len + 1,
            };
            let flip = 1u32 << (32 - (self.len + 1));
            let right = Ipv4Prefix {
                bits: self.bits | flip,
                len: self.len + 1,
            };
            Some((left, right))
        }
    }

    /// The first (lowest) address in the prefix.
    pub const fn first(&self) -> Ipv4Addr {
        self.network()
    }

    /// The last (highest) address in the prefix.
    pub const fn last(&self) -> Ipv4Addr {
        let o = (self.bits | !Self::mask(self.len)).to_be_bytes();
        Ipv4Addr::new(o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| Error::Parse(format!("missing '/' in prefix {s:?}")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|e| Error::Parse(format!("bad address in prefix {s:?}: {e}")))?;
        let len: u8 = len
            .parse()
            .map_err(|e| Error::Parse(format!("bad length in prefix {s:?}: {e}")))?;
        if len > 32 {
            return Err(Error::Parse(format!("prefix length {len} > 32")));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

impl From<Ipv4Addr> for Ipv4Prefix {
    fn from(addr: Ipv4Addr) -> Self {
        Ipv4Prefix::host(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_form_clears_host_bits() {
        let pref = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(pref.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(pref.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn contains_and_covers() {
        let pref = p("10.0.0.0/8");
        assert!(pref.contains(Ipv4Addr::new(10, 200, 3, 4)));
        assert!(!pref.contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(pref.covers(&p("10.1.0.0/16")));
        assert!(!pref.covers(&p("0.0.0.0/0")));
        assert!(p("0.0.0.0/0").covers(&pref));
    }

    #[test]
    fn sibling_and_parent() {
        let left = p("10.0.0.0/9");
        let right = p("10.128.0.0/9");
        assert_eq!(left.sibling(), Some(right));
        assert_eq!(right.sibling(), Some(left));
        assert_eq!(left.parent(), Some(p("10.0.0.0/8")));
        assert!(Ipv4Prefix::DEFAULT.sibling().is_none());
        assert!(Ipv4Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn aggregation_requires_contiguity() {
        let a = p("10.0.0.0/24");
        let b = p("10.0.1.0/24");
        let c = p("10.0.2.0/24");
        assert_eq!(a.aggregate(&b), Some(p("10.0.0.0/23")));
        // b and c are adjacent numerically but not siblings: 1 and 2 differ
        // in two bits under /23.
        assert_eq!(b.aggregate(&c), None);
        // different lengths never aggregate
        assert_eq!(a.aggregate(&p("10.0.0.0/25")), None);
        // a prefix does not aggregate with itself
        assert_eq!(a.aggregate(&a), None);
    }

    #[test]
    fn children_invert_parent() {
        let pref = p("192.168.0.0/16");
        let (l, r) = pref.children().unwrap();
        assert_eq!(l.parent(), Some(pref));
        assert_eq!(r.parent(), Some(pref));
        assert_eq!(l.aggregate(&r), Some(pref));
        assert!(p("1.2.3.4/32").children().is_none());
    }

    #[test]
    fn first_last_span() {
        let pref = p("10.0.0.0/30");
        assert_eq!(pref.first(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(pref.last(), Ipv4Addr::new(10, 0, 0, 3));
        assert_eq!(pref.size(), 4);
        assert_eq!(Ipv4Prefix::DEFAULT.size(), 1 << 32);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("300.0.0.0/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "203.0.113.7/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    proptest! {
        #[test]
        fn prop_contains_consistent_with_covers(bits in any::<u32>(), len in 0u8..=32, host in any::<u32>()) {
            let pref = Ipv4Prefix::from_bits(bits, len);
            let addr = Ipv4Addr::from(host);
            prop_assert_eq!(
                pref.contains(addr),
                pref.covers(&Ipv4Prefix::host(addr))
            );
        }

        #[test]
        fn prop_sibling_is_involutive(bits in any::<u32>(), len in 1u8..=32) {
            let pref = Ipv4Prefix::from_bits(bits, len);
            prop_assert_eq!(pref.sibling().unwrap().sibling().unwrap(), pref);
        }

        #[test]
        fn prop_aggregate_covers_both(bits in any::<u32>(), len in 1u8..=32) {
            let a = Ipv4Prefix::from_bits(bits, len);
            let b = a.sibling().unwrap();
            let parent = a.aggregate(&b).unwrap();
            prop_assert!(parent.covers(&a));
            prop_assert!(parent.covers(&b));
            prop_assert_eq!(parent.size(), a.size() + b.size());
        }

        #[test]
        fn prop_parent_covers_exactly_children(bits in any::<u32>(), len in 0u8..32) {
            let pref = Ipv4Prefix::from_bits(bits, len);
            let (l, r) = pref.children().unwrap();
            prop_assert!(pref.covers(&l) && pref.covers(&r));
            prop_assert!(!l.overlaps(&r));
        }

        #[test]
        fn prop_display_round_trips(bits in any::<u32>(), len in 0u8..=32) {
            let pref = Ipv4Prefix::from_bits(bits, len);
            let parsed: Ipv4Prefix = pref.to_string().parse().unwrap();
            prop_assert_eq!(parsed, pref);
        }
    }
}
