//! Simulated time.
//!
//! The workload generator and the end-to-end simulator are deterministic
//! discrete-event systems; they share this microsecond-resolution clock.
//! Keeping simulation time distinct from `std::time` prevents wall-clock
//! time from leaking into supposedly reproducible experiments.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Microseconds since origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d).as_micros(), 11_500_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO); // saturating
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2500).as_secs(), 2);
        assert!((SimDuration::from_micros(1).as_secs_f64() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
