//! The physical network: switches, links and the packet walker.
//!
//! [`PhysicalNetwork`] instantiates one [`softcell_dataplane::Switch`]
//! per topology node, applies the controller's [`RuleOp`]s, and walks
//! packets hop by hop. A walk starts at an injection point (a radio port
//! on an access switch, or the Internet port of a gateway), repeatedly
//! runs the current switch's pipeline, crosses links, detours through
//! middleboxes (recording each traversal), and terminates with a
//! [`WalkOutcome`].

use softcell_controller::RuleOp;
use softcell_dataplane::{ForwardDecision, Switch};
use softcell_packet::Ipv4Packet;
use softcell_topology::{SwitchRole, Topology};
use softcell_types::{Error, MiddleboxId, PortNo, Result, SimTime, SwitchId};

use crate::middlebox::MiddleboxTracker;

/// How a packet's walk through the fabric ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalkOutcome {
    /// Delivered out an access switch's radio port (reached a UE).
    DeliveredToRadio {
        /// The delivering access switch.
        switch: SwitchId,
    },
    /// Left the network through a gateway's Internet port.
    ExitedGateway {
        /// The exit gateway switch.
        switch: SwitchId,
    },
    /// Punted to the local agent at an access switch (packet-in).
    PuntedToAgent {
        /// The punting access switch.
        switch: SwitchId,
        /// The port the packet had arrived on.
        in_port: PortNo,
    },
    /// Dropped (rule, table miss, or TTL exhaustion).
    Dropped {
        /// Where it died.
        switch: SwitchId,
    },
}

/// The running data plane.
pub struct PhysicalNetwork {
    switches: Vec<Switch>,
    /// Per-middlebox traversal records.
    pub middleboxes: MiddleboxTracker,
    /// Hop budget per walk (beyond TTL; guards against rule loops).
    pub max_hops: usize,
    /// Print each hop decision to stderr (debugging aid).
    pub trace: bool,
    /// Number of switch-pipeline executions in the most recent walk
    /// (path-stretch measurements: triangle routing vs shortcuts).
    pub last_walk_hops: usize,
    /// The switch sequence of the most recent walk.
    pub last_walk_trail: Vec<SwitchId>,
}

impl PhysicalNetwork {
    /// Builds switches for every topology node.
    pub fn new(topo: &Topology) -> PhysicalNetwork {
        let switches = topo
            .switches()
            .iter()
            .map(|s| match s.role {
                SwitchRole::Access => Switch::access(s.id),
                _ => Switch::fabric(s.id),
            })
            .collect();
        PhysicalNetwork {
            switches,
            middleboxes: MiddleboxTracker::default(),
            max_hops: 256,
            trace: false,
            last_walk_hops: 0,
            last_walk_trail: Vec::new(),
        }
    }

    /// A switch by id.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.index()]
    }

    /// A mutable switch by id.
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut Switch {
        &mut self.switches[id.index()]
    }

    /// All switches (consistent-update orchestration).
    pub fn switches_mut(&mut self) -> &mut [Switch] {
        &mut self.switches
    }

    /// Applies one controller rule operation.
    pub fn apply(&mut self, op: &RuleOp) -> Result<()> {
        match op {
            RuleOp::Install {
                switch,
                priority,
                matcher,
                action,
            } => {
                self.switches[switch.index()]
                    .table
                    .install(*priority, *matcher, *action)?;
                Ok(())
            }
            RuleOp::Remove { switch, matcher } => {
                self.switches[switch.index()]
                    .table
                    .remove_where(|r| r.matcher == *matcher);
                Ok(())
            }
        }
    }

    /// Applies a batch of operations.
    pub fn apply_all(&mut self, ops: &[RuleOp]) -> Result<()> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Total flow-table rules across all switches.
    pub fn total_rules(&self) -> usize {
        self.switches.iter().map(|s| s.table.len()).sum()
    }

    /// Walks a packet from an injection point until it leaves the
    /// fabric. `start`/`in_port` name where the packet enters (radio
    /// port for uplink, gateway Internet port for downlink); `version`
    /// is the consistent-update stamp (normally the ingress switch's
    /// current version).
    pub fn walk(
        &mut self,
        topo: &Topology,
        buffer: &mut [u8],
        start: SwitchId,
        in_port: PortNo,
        version: u32,
        now: SimTime,
    ) -> Result<WalkOutcome> {
        let mut sw = start;
        let mut port = in_port;
        let walk_id = self.middleboxes.begin_walk();
        self.last_walk_trail.clear();
        let mut trail: Vec<SwitchId> = Vec::new();
        for _ in 0..self.max_hops {
            trail.push(sw);
            self.last_walk_hops = trail.len();
            self.last_walk_trail.push(sw);
            let decision = self.switches[sw.index()].process(buffer, port, version, now)?;
            if self.trace {
                let v = softcell_packet::HeaderView::parse(buffer);
                eprintln!("  walk {walk_id}: {sw} in {port} -> {decision:?} ({v:?})");
            }
            match decision {
                ForwardDecision::ToController => {
                    return Ok(WalkOutcome::PuntedToAgent {
                        switch: sw,
                        in_port: port,
                    })
                }
                ForwardDecision::Drop => return Ok(WalkOutcome::Dropped { switch: sw }),
                ForwardDecision::Out(out) => {
                    // classify the output port: radio? internet? mb? link?
                    if let Some(bs) = topo.base_station_at(sw) {
                        if topo.base_station(bs).radio_port == out {
                            return Ok(WalkOutcome::DeliveredToRadio { switch: sw });
                        }
                    }
                    if let Some(gw) = topo.gateways().iter().find(|g| g.switch == sw) {
                        if gw.port == out {
                            return Ok(WalkOutcome::ExitedGateway { switch: sw });
                        }
                    }
                    if let Some(mb) = middlebox_on_port(topo, sw, out) {
                        // detour: the middlebox sees the packet and sends
                        // it straight back on the same port
                        self.middleboxes.observe(mb, buffer, walk_id)?;
                        decrement_ttl(buffer).map_err(|e| {
                            Error::InvalidState(format!(
                                "{e}; trail tail: {:?}",
                                &trail[trail.len().saturating_sub(12)..]
                            ))
                        })?;
                        port = out;
                        continue;
                    }
                    // a fabric link: cross it
                    let (next, next_port) = cross_link(topo, sw, out)?;
                    decrement_ttl(buffer).map_err(|e| {
                        Error::InvalidState(format!(
                            "{e}; trail tail: {:?}",
                            &trail[trail.len().saturating_sub(12)..]
                        ))
                    })?;
                    sw = next;
                    port = next_port;
                }
            }
        }
        Err(Error::InvalidState(format!(
            "walk exceeded {} hops (rule loop?) at {sw}; trail tail: {:?}",
            self.max_hops,
            &trail[trail.len().saturating_sub(12)..]
        )))
    }
}

fn middlebox_on_port(topo: &Topology, sw: SwitchId, port: PortNo) -> Option<MiddleboxId> {
    topo.middleboxes()
        .iter()
        .find(|m| m.switch == sw && m.port == port)
        .map(|m| m.id)
}

fn cross_link(topo: &Topology, sw: SwitchId, out: PortNo) -> Result<(SwitchId, PortNo)> {
    topo.neighbors(sw)
        .iter()
        .find(|(_, p, _)| *p == out)
        .map(|(n, _, in_p)| (*n, *in_p))
        .ok_or_else(|| Error::InvalidState(format!("{sw} forwarded out unconnected port {out}")))
}

fn decrement_ttl(buffer: &mut [u8]) -> Result<()> {
    let mut ip = Ipv4Packet::new_checked(&mut buffer[..])?;
    match ip.decrement_ttl() {
        Some(_) => {
            ip.fill_checksum();
            Ok(())
        }
        None => Err(Error::InvalidState(format!(
            "TTL exhausted mid-walk ({} -> {})",
            ip.src_addr(),
            ip.dst_addr()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_dataplane::matcher::{conventional_priority, Direction, Match};
    use softcell_dataplane::Action;
    use softcell_packet::{build_flow_packet, FiveTuple, Protocol};
    use softcell_topology::small_topology;
    use softcell_types::Ipv4Prefix;
    use std::net::Ipv4Addr;

    fn downlink_packet(dst: Ipv4Addr) -> Vec<u8> {
        build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(93, 184, 216, 34),
                dst,
                src_port: 443,
                dst_port: 4096,
                proto: Protocol::Tcp,
            },
            64,
            0,
            b"resp",
        )
    }

    #[test]
    fn network_mirrors_topology() {
        let topo = small_topology();
        let net = PhysicalNetwork::new(&topo);
        assert_eq!(net.total_rules(), 0);
        assert_eq!(
            net.switch(SwitchId(0)).kind,
            softcell_dataplane::switch::PipelineKind::Fabric
        );
        assert_eq!(
            net.switch(SwitchId(5)).kind,
            softcell_dataplane::switch::PipelineKind::Access
        );
    }

    #[test]
    fn walk_follows_installed_prefix_rules_to_radio() {
        let topo = small_topology();
        let mut net = PhysicalNetwork::new(&topo);
        // route 10.0.0.0/23 (bs0's prefix under the default scheme)
        // gw(0) -> c1(1) -> agg1(3) -> acc(5), then radio delivery via a
        // microflow entry
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();
        let hops = [(0u32, 1u32), (1, 3), (3, 5)];
        for (a, b) in hops {
            let m = Match::prefix(Direction::Downlink, pref);
            let out = topo.port_towards(SwitchId(a), SwitchId(b)).unwrap();
            net.switch_mut(SwitchId(a))
                .table
                .install(conventional_priority(&m), m, Action::Forward(out))
                .unwrap();
        }
        let dst = Ipv4Addr::new(10, 0, 0, 7);
        let mut buf = downlink_packet(dst);
        let view = softcell_packet::HeaderView::parse(&buf).unwrap();
        let radio = topo
            .base_station(softcell_types::BaseStationId(0))
            .radio_port;
        net.switch_mut(SwitchId(5))
            .microflow
            .install(
                view.tuple,
                softcell_dataplane::MicroflowAction::RewriteDst {
                    addr: Ipv4Addr::new(100, 64, 0, 9),
                    port: 50000,
                    out: radio,
                },
                SimTime::from_secs(60),
            )
            .unwrap();

        let gw_port = topo.default_gateway().port;
        let out = net
            .walk(&topo, &mut buf, SwitchId(0), gw_port, 0, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            out,
            WalkOutcome::DeliveredToRadio {
                switch: SwitchId(5)
            }
        );
        let after = softcell_packet::HeaderView::parse(&buf).unwrap();
        assert_eq!(after.dst(), Ipv4Addr::new(100, 64, 0, 9));
    }

    #[test]
    fn walk_detours_through_middlebox_and_records_it() {
        let topo = small_topology();
        let mut net = PhysicalNetwork::new(&topo);
        let fw = topo.middleboxes()[0]; // firewall on c1(1)
        let pref: Ipv4Prefix = "10.0.0.0/23".parse().unwrap();

        // gw -> c1; c1 -> firewall; firewall-return -> agg1 -> acc5
        let m = Match::prefix(Direction::Downlink, pref);
        let p_c1 = topo.port_towards(SwitchId(0), SwitchId(1)).unwrap();
        net.switch_mut(SwitchId(0))
            .table
            .install(conventional_priority(&m), m, Action::Forward(p_c1))
            .unwrap();
        net.switch_mut(SwitchId(1))
            .table
            .install(conventional_priority(&m), m, Action::Forward(fw.port))
            .unwrap();
        let m_ret = m.from_port(fw.port);
        let p_agg = topo.port_towards(SwitchId(1), SwitchId(3)).unwrap();
        net.switch_mut(SwitchId(1))
            .table
            .install(conventional_priority(&m_ret), m_ret, Action::Forward(p_agg))
            .unwrap();
        let p_acc = topo.port_towards(SwitchId(3), SwitchId(5)).unwrap();
        net.switch_mut(SwitchId(3))
            .table
            .install(conventional_priority(&m), m, Action::Forward(p_acc))
            .unwrap();

        let mut buf = downlink_packet(Ipv4Addr::new(10, 0, 0, 7));
        let gw_port = topo.default_gateway().port;
        let out = net
            .walk(&topo, &mut buf, SwitchId(0), gw_port, 0, SimTime::ZERO)
            .unwrap();
        // no microflow at acc5 → punted to the agent
        assert_eq!(
            out,
            WalkOutcome::PuntedToAgent {
                switch: SwitchId(5),
                in_port: topo
                    .neighbors(SwitchId(3))
                    .iter()
                    .find(|(n, _, _)| *n == SwitchId(5))
                    .unwrap()
                    .2,
            }
        );
        assert_eq!(net.middleboxes.total_packets(), 1);
        assert_eq!(net.middleboxes.connections_seen(fw.id), 1);
    }

    #[test]
    fn empty_fabric_drops() {
        let topo = small_topology();
        let mut net = PhysicalNetwork::new(&topo);
        let mut buf = downlink_packet(Ipv4Addr::new(10, 0, 0, 7));
        let out = net
            .walk(
                &topo,
                &mut buf,
                SwitchId(0),
                topo.default_gateway().port,
                0,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(
            out,
            WalkOutcome::Dropped {
                switch: SwitchId(0)
            }
        );
    }

    #[test]
    fn rule_loop_is_detected() {
        let topo = small_topology();
        let mut net = PhysicalNetwork::new(&topo);
        // c1 -> gw and gw -> c1 forever
        let m = Match::ANY;
        let p1 = topo.port_towards(SwitchId(0), SwitchId(1)).unwrap();
        let p0 = topo.port_towards(SwitchId(1), SwitchId(0)).unwrap();
        net.switch_mut(SwitchId(0))
            .table
            .install(1, m, Action::Forward(p1))
            .unwrap();
        net.switch_mut(SwitchId(1))
            .table
            .install(1, m, Action::Forward(p0))
            .unwrap();
        let mut buf = build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(1, 1, 1, 1),
                dst: Ipv4Addr::new(2, 2, 2, 2),
                src_port: 1,
                dst_port: 2,
                proto: Protocol::Tcp,
            },
            255,
            0,
            &[],
        );
        let r = net.walk(
            &topo,
            &mut buf,
            SwitchId(0),
            topo.default_gateway().port,
            0,
            SimTime::ZERO,
        );
        assert!(r.is_err(), "loop must fail loudly, not spin");
    }

    #[test]
    fn rule_ops_install_and_remove() {
        let topo = small_topology();
        let mut net = PhysicalNetwork::new(&topo);
        let m = Match::prefix(Direction::Downlink, "10.0.0.0/23".parse().unwrap());
        net.apply(&RuleOp::Install {
            switch: SwitchId(0),
            priority: 10,
            matcher: m,
            action: Action::Drop,
        })
        .unwrap();
        assert_eq!(net.total_rules(), 1);
        net.apply(&RuleOp::Remove {
            switch: SwitchId(0),
            matcher: m,
        })
        .unwrap();
        assert_eq!(net.total_rules(), 0);
    }
}
