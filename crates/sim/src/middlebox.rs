//! Stateful middlebox instances — the policy-consistency witness.
//!
//! SoftCell promises that all packets of a connection, in both
//! directions, traverse the same middlebox *instances* (paper §2.1
//! "SoftCell supports stateful middleboxes", §5.1 under mobility). The
//! tracker records, per instance, every connection observed; the
//! [`MiddleboxTracker::chain_of`] reconstruction lets tests assert that
//! a connection's uplink and downlink traversals name the same instances
//! in mirrored order, across handoffs.
//!
//! Connections are keyed location-independently: a packet's (LocIP,
//! remote endpoint, flow slot) triple survives tag swaps and direction
//! changes, which is exactly what a real stateful middlebox keys on
//! after SoftCell's rewrites.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use softcell_packet::HeaderView;
use softcell_types::{AddressingScheme, Error, MiddleboxId, PortEmbedding, Result};

/// The connection key a stateful middlebox tracks: the UE side (LocIP +
/// flow slot) and the remote endpoint. Tag bits are deliberately
/// excluded (downlink swaps may alter them mid-path).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConnKey {
    /// The UE's location-dependent address.
    pub loc: Ipv4Addr,
    /// The flow-slot bits of the embedded port.
    pub slot: u16,
    /// Remote (Internet) address.
    pub remote: Ipv4Addr,
    /// Remote port.
    pub remote_port: u16,
}

/// Per-direction packet counts of one connection at one instance.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TraversalCount {
    /// UE → Internet packets seen.
    pub uplink: u64,
    /// Internet → UE packets seen.
    pub downlink: u64,
}

/// Records traversals per middlebox instance.
pub struct MiddleboxTracker {
    scheme: AddressingScheme,
    ports: PortEmbedding,
    /// (instance, connection) → counts.
    seen: HashMap<(MiddleboxId, ConnKey), TraversalCount>,
    /// Traversal log: (walk id, key, instance, was_uplink). The walk id
    /// identifies one packet's journey, so chains never merge across
    /// packets.
    log: Vec<(u64, ConnKey, MiddleboxId, bool)>,
    next_walk: u64,
    total: u64,
}

impl Default for MiddleboxTracker {
    fn default() -> Self {
        MiddleboxTracker {
            scheme: AddressingScheme::default_scheme(),
            ports: PortEmbedding::default_embedding(),
            seen: HashMap::new(),
            log: Vec::new(),
            next_walk: 0,
            total: 0,
        }
    }
}

impl MiddleboxTracker {
    /// A tracker for a specific addressing configuration.
    pub fn new(scheme: AddressingScheme, ports: PortEmbedding) -> Self {
        MiddleboxTracker {
            scheme,
            ports,
            ..MiddleboxTracker::default()
        }
    }

    /// Extracts the connection key from a packet, inferring direction
    /// from which end is a LocIP.
    pub fn key_of(&self, view: &HeaderView) -> Result<(ConnKey, bool)> {
        if self.scheme.is_loc_ip(view.src()) {
            let (_, slot) = self.ports.decode(view.src_port());
            Ok((
                ConnKey {
                    loc: view.src(),
                    slot,
                    remote: view.dst(),
                    remote_port: view.dst_port(),
                },
                true,
            ))
        } else if self.scheme.is_loc_ip(view.dst()) {
            let (_, slot) = self.ports.decode(view.dst_port());
            Ok((
                ConnKey {
                    loc: view.dst(),
                    slot,
                    remote: view.src(),
                    remote_port: view.src_port(),
                },
                false,
            ))
        } else {
            Err(Error::InvalidState(format!(
                "packet at middlebox carries no LocIP ({} -> {})",
                view.src(),
                view.dst()
            )))
        }
    }

    /// Starts a new packet walk, returning its id.
    pub fn begin_walk(&mut self) -> u64 {
        let id = self.next_walk;
        self.next_walk += 1;
        id
    }

    /// Records one packet (identified by its walk id) at one instance.
    pub fn observe(&mut self, mb: MiddleboxId, buffer: &[u8], walk: u64) -> Result<()> {
        let view = HeaderView::parse(buffer)?;
        let (key, uplink) = self.key_of(&view)?;
        let counts = self.seen.entry((mb, key)).or_default();
        if uplink {
            counts.uplink += 1;
        } else {
            counts.downlink += 1;
        }
        self.log.push((walk, key, mb, uplink));
        self.total += 1;
        Ok(())
    }

    /// Total packets observed across all instances.
    pub fn total_packets(&self) -> u64 {
        self.total
    }

    /// Number of distinct connections an instance has seen.
    pub fn connections_seen(&self, mb: MiddleboxId) -> usize {
        self.seen.keys().filter(|(m, _)| *m == mb).count()
    }

    /// Counts for one (instance, connection).
    pub fn counts(&self, mb: MiddleboxId, key: &ConnKey) -> TraversalCount {
        self.seen.get(&(mb, *key)).copied().unwrap_or_default()
    }

    /// The ordered instance chain the first packet of a (connection,
    /// direction) traversed. Later packets' chains are asserted equal by
    /// [`Self::assert_consistent`].
    pub fn chain_of(&self, key: &ConnKey, uplink: bool) -> Vec<MiddleboxId> {
        self.all_chains(key, uplink)
            .into_iter()
            .next()
            .unwrap_or_default()
    }

    /// All per-packet chains of a (connection, direction) — each inner
    /// vec is the instance sequence one packet saw, grouped by walk id.
    pub fn all_chains(&self, key: &ConnKey, uplink: bool) -> Vec<Vec<MiddleboxId>> {
        let mut chains: Vec<(u64, Vec<MiddleboxId>)> = Vec::new();
        for (walk, k, mb, up) in &self.log {
            if k != key || *up != uplink {
                continue;
            }
            match chains.last_mut() {
                Some((w, chain)) if w == walk => chain.push(*mb),
                _ => chains.push((*walk, vec![*mb])),
            }
        }
        chains.into_iter().map(|(_, c)| c).collect()
    }

    /// Asserts the paper's policy-consistency property for a connection:
    /// every uplink packet saw the same instance chain; every downlink
    /// packet saw exactly the reversed chain.
    pub fn assert_consistent(&self, key: &ConnKey) -> Result<()> {
        let ups = self.all_chains(key, true);
        let downs = self.all_chains(key, false);
        if let Some(first) = ups.first() {
            for (i, c) in ups.iter().enumerate() {
                if c != first {
                    return Err(Error::InvalidState(format!(
                        "uplink packet {i} took chain {c:?}, expected {first:?}"
                    )));
                }
            }
            let mirrored: Vec<MiddleboxId> = first.iter().rev().copied().collect();
            for (i, c) in downs.iter().enumerate() {
                if *c != mirrored {
                    return Err(Error::InvalidState(format!(
                        "downlink packet {i} took chain {c:?}, expected mirror {mirrored:?}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Incremental policy-consistency auditor over a [`MiddleboxTracker`]'s
/// traversal log.
///
/// [`MiddleboxTracker::assert_consistent`] rescans the full log for one
/// connection; calling it for every connection every probe interval is
/// O(connections × log) and unusable for a continuously-checked campaign.
/// The auditor instead keeps a cursor into the log and a reference chain
/// per (connection, direction): each [`ConsistencyAuditor::audit`] call
/// processes only entries appended since the last call, grouping
/// consecutive same-(walk, key, direction) entries into one packet's
/// chain segment and checking it against the reference (first sighting
/// becomes the reference; a downlink reference must mirror the uplink
/// one and vice versa). Total work over a run is O(log), regardless of
/// probe frequency.
///
/// Connection keys embed recycled flow slots, so references are only
/// valid within one configuration epoch: after a reoptimization that
/// may re-place middlebox instances, pair a fresh tracker with
/// [`ConsistencyAuditor::reset`].
#[derive(Default)]
pub struct ConsistencyAuditor {
    cursor: usize,
    reference: HashMap<(ConnKey, bool), Vec<MiddleboxId>>,
    segments: u64,
}

impl ConsistencyAuditor {
    /// A fresh auditor starting at the head of the log.
    pub fn new() -> Self {
        ConsistencyAuditor::default()
    }

    /// Checks all log entries appended since the previous call. Returns
    /// the first violation found (the cursor still advances past the
    /// audited region, so a campaign can record the violation and
    /// continue). Call only between packet walks — a mid-walk audit
    /// would see a truncated chain segment.
    pub fn audit(&mut self, tracker: &MiddleboxTracker) -> Result<()> {
        let log = &tracker.log;
        let mut first_err = None;
        let mut i = self.cursor;
        while i < log.len() {
            let (walk, key, _, up) = log[i];
            let mut chain = Vec::new();
            while i < log.len() {
                let (w2, k2, mb2, up2) = log[i];
                if w2 != walk || k2 != key || up2 != up {
                    break;
                }
                chain.push(mb2);
                i += 1;
            }
            self.segments += 1;
            if let Err(e) = self.check_segment(key, up, chain) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        self.cursor = log.len();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn check_segment(&mut self, key: ConnKey, up: bool, chain: Vec<MiddleboxId>) -> Result<()> {
        let dir = if up { "uplink" } else { "downlink" };
        if let Some(reference) = self.reference.get(&(key, up)) {
            if *reference != chain {
                return Err(Error::InvalidState(format!(
                    "policy-consistency violation: {dir} packet of {key:?} \
                     took chain {chain:?}, expected {reference:?}"
                )));
            }
            return Ok(());
        }
        if let Some(opposite) = self.reference.get(&(key, !up)) {
            let mirrored: Vec<MiddleboxId> = opposite.iter().rev().copied().collect();
            if mirrored != chain {
                return Err(Error::InvalidState(format!(
                    "policy-consistency violation: {dir} packet of {key:?} \
                     took chain {chain:?}, expected mirror {mirrored:?}"
                )));
            }
        }
        self.reference.insert((key, up), chain);
        Ok(())
    }

    /// Chain segments (packet traversals) checked so far.
    pub fn segments_checked(&self) -> u64 {
        self.segments
    }

    /// Distinct (connection, direction) reference chains held.
    pub fn references_held(&self) -> usize {
        self.reference.len()
    }

    /// Forgets all references and rewinds the cursor. Pair with a fresh
    /// tracker at a configuration-epoch boundary (e.g. after
    /// `apply_reoptimization` re-places middlebox instances, or when
    /// recycled flow slots would alias old connection keys).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.reference.clear();
        self.segments = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_packet::{build_flow_packet, FiveTuple, Protocol};
    use softcell_types::{BaseStationId, LocIp, PolicyTag, UeId};

    fn tracker() -> MiddleboxTracker {
        MiddleboxTracker::default()
    }

    fn up_packet(slot: u16) -> Vec<u8> {
        let scheme = AddressingScheme::default_scheme();
        let ports = PortEmbedding::default_embedding();
        let loc = scheme
            .encode(LocIp::new(BaseStationId(3), UeId(1)))
            .unwrap();
        build_flow_packet(
            FiveTuple {
                src: loc,
                dst: Ipv4Addr::new(93, 184, 216, 34),
                src_port: ports.encode(PolicyTag(5), slot).unwrap(),
                dst_port: 443,
                proto: Protocol::Tcp,
            },
            64,
            0,
            &[],
        )
    }

    fn down_packet(slot: u16, tag: PolicyTag) -> Vec<u8> {
        let scheme = AddressingScheme::default_scheme();
        let ports = PortEmbedding::default_embedding();
        let loc = scheme
            .encode(LocIp::new(BaseStationId(3), UeId(1)))
            .unwrap();
        build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(93, 184, 216, 34),
                dst: loc,
                src_port: 443,
                dst_port: ports.encode(tag, slot).unwrap(),
                proto: Protocol::Tcp,
            },
            64,
            0,
            &[],
        )
    }

    #[test]
    fn keys_unify_directions_and_ignore_tags() {
        let t = tracker();
        let up = HeaderView::parse(&up_packet(9)).unwrap();
        // downlink with a *different* tag (swapped in flight)
        let down = HeaderView::parse(&down_packet(9, PolicyTag(700))).unwrap();
        let (ku, is_up) = t.key_of(&up).unwrap();
        let (kd, is_up2) = t.key_of(&down).unwrap();
        assert!(is_up && !is_up2);
        assert_eq!(ku, kd, "same connection regardless of direction/tag");
    }

    #[test]
    fn non_locip_packet_is_an_error() {
        let t = tracker();
        let stray = build_flow_packet(
            FiveTuple {
                src: Ipv4Addr::new(1, 1, 1, 1),
                dst: Ipv4Addr::new(2, 2, 2, 2),
                src_port: 1,
                dst_port: 2,
                proto: Protocol::Udp,
            },
            64,
            0,
            &[],
        );
        assert!(t.key_of(&HeaderView::parse(&stray).unwrap()).is_err());
    }

    #[test]
    fn consistent_mirrored_chains_pass() {
        let mut t = tracker();
        let (fw, tc) = (MiddleboxId(1), MiddleboxId(2));
        // two uplink packets: fw then tc
        for _ in 0..2 {
            let w = t.begin_walk();
            t.observe(fw, &up_packet(4), w).unwrap();
            t.observe(tc, &up_packet(4), w).unwrap();
        }
        // downlink mirrors: tc then fw
        let w = t.begin_walk();
        t.observe(tc, &down_packet(4, PolicyTag(5)), w).unwrap();
        t.observe(fw, &down_packet(4, PolicyTag(5)), w).unwrap();
        let key = t
            .key_of(&HeaderView::parse(&up_packet(4)).unwrap())
            .unwrap()
            .0;
        t.assert_consistent(&key).unwrap();
        assert_eq!(t.chain_of(&key, true), vec![fw, tc]);
        assert_eq!(t.chain_of(&key, false), vec![tc, fw]);
        assert_eq!(
            t.counts(fw, &key),
            TraversalCount {
                uplink: 2,
                downlink: 1
            }
        );
    }

    #[test]
    fn wrong_instance_fails_consistency() {
        let mut t = tracker();
        let (fw1, fw2) = (MiddleboxId(1), MiddleboxId(9));
        let key = t
            .key_of(&HeaderView::parse(&up_packet(4)).unwrap())
            .unwrap()
            .0;
        let w = t.begin_walk();
        t.observe(fw1, &up_packet(4), w).unwrap();
        // second packet hits a *different* firewall instance
        let w = t.begin_walk();
        t.observe(fw2, &up_packet(4), w).unwrap();
        assert!(t.assert_consistent(&key).is_err());
    }

    #[test]
    fn unmirrored_downlink_fails() {
        let mut t = tracker();
        let (fw, tc) = (MiddleboxId(1), MiddleboxId(2));
        let w = t.begin_walk();
        t.observe(fw, &up_packet(4), w).unwrap();
        t.observe(tc, &up_packet(4), w).unwrap();
        // downlink in the same (wrong) order
        let w2 = t.begin_walk();
        t.observe(fw, &down_packet(4, PolicyTag(5)), w2).unwrap();
        t.observe(tc, &down_packet(4, PolicyTag(5)), w2).unwrap();
        let key = t
            .key_of(&HeaderView::parse(&up_packet(4)).unwrap())
            .unwrap()
            .0;
        assert!(t.assert_consistent(&key).is_err());
    }

    #[test]
    fn different_slots_are_different_connections() {
        let mut t = tracker();
        let fw = MiddleboxId(1);
        let w = t.begin_walk();
        t.observe(fw, &up_packet(1), w).unwrap();
        let w = t.begin_walk();
        t.observe(fw, &up_packet(2), w).unwrap();
        assert_eq!(t.connections_seen(fw), 2);
    }

    #[test]
    fn auditor_passes_consistent_incremental_slices() {
        let mut t = tracker();
        let mut a = ConsistencyAuditor::new();
        let (fw, tc) = (MiddleboxId(1), MiddleboxId(2));
        let w = t.begin_walk();
        t.observe(fw, &up_packet(4), w).unwrap();
        t.observe(tc, &up_packet(4), w).unwrap();
        a.audit(&t).unwrap();
        assert_eq!(a.segments_checked(), 1);
        // more traffic after the first audit: same chain, mirrored down
        let w = t.begin_walk();
        t.observe(fw, &up_packet(4), w).unwrap();
        t.observe(tc, &up_packet(4), w).unwrap();
        let w = t.begin_walk();
        t.observe(tc, &down_packet(4, PolicyTag(5)), w).unwrap();
        t.observe(fw, &down_packet(4, PolicyTag(5)), w).unwrap();
        a.audit(&t).unwrap();
        assert_eq!(a.segments_checked(), 3);
        // idempotent when nothing new was logged
        a.audit(&t).unwrap();
        assert_eq!(a.segments_checked(), 3);
    }

    #[test]
    fn auditor_catches_divergent_chain_in_new_slice_only() {
        let mut t = tracker();
        let mut a = ConsistencyAuditor::new();
        let (fw1, fw2) = (MiddleboxId(1), MiddleboxId(9));
        let w = t.begin_walk();
        t.observe(fw1, &up_packet(4), w).unwrap();
        a.audit(&t).unwrap();
        let w = t.begin_walk();
        t.observe(fw2, &up_packet(4), w).unwrap();
        let err = a.audit(&t).unwrap_err();
        assert!(err.to_string().contains("policy-consistency"), "{err}");
        // cursor advanced past the bad entry: no repeat report
        a.audit(&t).unwrap();
    }

    #[test]
    fn auditor_catches_unmirrored_downlink() {
        let mut t = tracker();
        let mut a = ConsistencyAuditor::new();
        let (fw, tc) = (MiddleboxId(1), MiddleboxId(2));
        let w = t.begin_walk();
        t.observe(fw, &up_packet(4), w).unwrap();
        t.observe(tc, &up_packet(4), w).unwrap();
        // downlink in the same (unmirrored) order
        let w = t.begin_walk();
        t.observe(fw, &down_packet(4, PolicyTag(5)), w).unwrap();
        t.observe(tc, &down_packet(4, PolicyTag(5)), w).unwrap();
        assert!(a.audit(&t).is_err());
    }

    #[test]
    fn auditor_agrees_with_full_rescan_oracle() {
        let mut t = tracker();
        let mut a = ConsistencyAuditor::new();
        let (fw, tc) = (MiddleboxId(1), MiddleboxId(2));
        for i in 0..6u16 {
            let slot = i % 3;
            let w = t.begin_walk();
            t.observe(fw, &up_packet(slot), w).unwrap();
            t.observe(tc, &up_packet(slot), w).unwrap();
            let w = t.begin_walk();
            t.observe(tc, &down_packet(slot, PolicyTag(5)), w).unwrap();
            t.observe(fw, &down_packet(slot, PolicyTag(5)), w).unwrap();
            a.audit(&t).unwrap();
        }
        for slot in 0..3u16 {
            let key = t
                .key_of(&HeaderView::parse(&up_packet(slot)).unwrap())
                .unwrap()
                .0;
            t.assert_consistent(&key).unwrap();
        }
        assert_eq!(a.references_held(), 6);
    }

    #[test]
    fn auditor_reset_forgets_epoch_references() {
        let mut t = tracker();
        let mut a = ConsistencyAuditor::new();
        let fw1 = MiddleboxId(1);
        let w = t.begin_walk();
        t.observe(fw1, &up_packet(4), w).unwrap();
        a.audit(&t).unwrap();
        // new epoch: fresh tracker, same connection key re-placed onto a
        // different instance — legal after reset, a violation without.
        let mut t2 = tracker();
        let fw2 = MiddleboxId(9);
        let w = t2.begin_walk();
        t2.observe(fw2, &up_packet(4), w).unwrap();
        a.reset();
        a.audit(&t2).unwrap();
        assert_eq!(a.references_held(), 1);
    }
}
