//! Baseline rule-count comparators for the aggregation ablation.
//!
//! SoftCell's §3.1 motivates multi-dimensional aggregation against two
//! classical designs, and our ablation bench quantifies the gap on the
//! same topology and policy-path workload:
//!
//! * **Flat tag routing** (VLAN/MPLS-style, the paper's "tag-based
//!   routing scales poorly as it enforces flat routing"): every policy
//!   path gets its own label; every switch on the path holds one entry
//!   per label. No sharing, no aggregation.
//! * **Per-flow rules** (Ethane/PLayer-style reactive installation):
//!   every *flow* installs an entry at every on-path switch; reported as
//!   flat-tag counts times the expected flows per path.
//! * **Location-only routing** (plain IP): destination-prefix rules
//!   with sibling aggregation — the lower bound, but unable to express
//!   any policy (every path collapses onto shortest paths; middlebox
//!   steering is impossible). Included to show what aggregation alone
//!   buys *without* the policy dimension.
//!
//! All three consume [`softcell_topology::PolicyPath`]s so they see the
//! byte-identical workload the real installer sees.

use std::collections::HashMap;

use softcell_topology::{PolicyPath, Topology};
use softcell_types::{AddressingScheme, Ipv4Prefix, Result, SwitchId};

/// Rule counts per switch for one baseline.
#[derive(Clone, Debug, Default)]
pub struct BaselineCounts {
    counts: Vec<usize>,
}

impl BaselineCounts {
    fn new(n: usize) -> Self {
        BaselineCounts { counts: vec![0; n] }
    }

    /// Per-switch rule counts.
    pub fn per_switch(&self) -> &[usize] {
        &self.counts
    }

    /// The maximum table size.
    pub fn max(&self) -> usize {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// The median table size over switches holding at least one rule.
    pub fn median_nonzero(&self) -> usize {
        let mut nz: Vec<usize> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        if nz.is_empty() {
            return 0;
        }
        nz.sort_unstable();
        nz[nz.len() / 2]
    }

    /// Total rules network-wide.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Flat tag routing: one fresh label per path, one rule per on-path
/// switch (including middlebox-return legs, which also need an entry).
#[derive(Debug)]
pub struct FlatTagBaseline {
    counts: BaselineCounts,
    paths: usize,
}

impl FlatTagBaseline {
    /// Creates the baseline over a topology.
    pub fn new(topo: &Topology) -> Self {
        FlatTagBaseline {
            counts: BaselineCounts::new(topo.switch_count()),
            paths: 0,
        }
    }

    /// Accounts one policy path.
    pub fn install(&mut self, path: &PolicyPath) {
        // one rule per forwarding decision: each hop forwards once
        // (including the gateway's exit decision), plus one extra rule
        // per middlebox traversal (the return leg)
        for hop in &path.hops {
            self.counts.counts[hop.switch.index()] += 1;
            if hop.mb_after.is_some() {
                self.counts.counts[hop.switch.index()] += 1;
            }
        }
        self.paths += 1;
    }

    /// The counts.
    pub fn counts(&self) -> &BaselineCounts {
        &self.counts
    }

    /// Labels consumed (= paths installed).
    pub fn labels_used(&self) -> usize {
        self.paths
    }
}

/// Per-flow rules: flat-tag shape scaled by expected concurrent flows
/// per path.
pub fn per_flow_estimate(flat: &BaselineCounts, flows_per_path: usize) -> BaselineCounts {
    BaselineCounts {
        counts: flat
            .per_switch()
            .iter()
            .map(|c| c * flows_per_path)
            .collect(),
    }
}

/// Location-only routing: destination-prefix rules along each path with
/// contiguous-sibling aggregation — the policy-free lower bound. Paths
/// that need middlebox steering simply cannot be expressed; only the
/// prefix → next-hop mapping is installed (last writer wins, as plain
/// IP routing would converge to one next hop per prefix).
#[derive(Debug)]
pub struct LocationOnlyBaseline {
    scheme: AddressingScheme,
    /// per switch: prefix → next hop, with sibling merging
    tables: Vec<HashMap<Ipv4Prefix, SwitchId>>,
}

impl LocationOnlyBaseline {
    /// Creates the baseline.
    pub fn new(topo: &Topology, scheme: AddressingScheme) -> Self {
        LocationOnlyBaseline {
            scheme,
            tables: vec![HashMap::new(); topo.switch_count()],
        }
    }

    /// Accounts one policy path (its location component only: the
    /// downlink route towards the origin station).
    pub fn install(&mut self, path: &PolicyPath) -> Result<()> {
        let prefix = self.scheme.base_station_prefix(path.origin)?;
        // downlink: walk the reversed switch sequence
        let switches: Vec<SwitchId> = {
            let mut s: Vec<SwitchId> = path.hops.iter().map(|h| h.switch).collect();
            s.dedup();
            s.reverse();
            s
        };
        for w in switches.windows(2) {
            let (sw, next) = (w[0], w[1]);
            let table = &mut self.tables[sw.index()];
            if table.get(&prefix) == Some(&next) {
                continue;
            }
            // insert with sibling aggregation
            let mut p = prefix;
            table.insert(p, next);
            while let Some(sib) = p.sibling() {
                if table.get(&sib) == Some(&next) {
                    let parent = p.parent().expect("sibling exists");
                    if table.get(&p) == Some(&next) {
                        table.remove(&p);
                    }
                    table.remove(&sib);
                    table.insert(parent, next);
                    p = parent;
                } else {
                    break;
                }
            }
        }
        Ok(())
    }

    /// The counts.
    pub fn counts(&self) -> BaselineCounts {
        BaselineCounts {
            counts: self.tables.iter().map(|t| t.len()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_topology::{small_topology, ShortestPaths};
    use softcell_types::{BaseStationId, MiddleboxKind};

    fn paths(topo: &Topology, n_per_bs: usize) -> Vec<PolicyPath> {
        let mut sp = ShortestPaths::new(topo);
        let gw = topo.default_gateway().switch;
        let fw = topo.instances_of(MiddleboxKind::Firewall)[0];
        let tc = topo.instances_of(MiddleboxKind::Transcoder)[0];
        let chains: [&[_]; 2] = [&[fw], &[fw, tc]];
        let mut out = Vec::new();
        for bs in 0..topo.base_stations().len() {
            for c in 0..n_per_bs {
                let chain = chains[c % 2];
                out.push(
                    sp.route_policy_path(BaseStationId(bs as u32), chain, gw)
                        .unwrap(),
                );
            }
        }
        out
    }

    #[test]
    fn flat_tag_grows_linearly_with_paths() {
        let topo = small_topology();
        let mut flat = FlatTagBaseline::new(&topo);
        for p in paths(&topo, 2) {
            flat.install(&p);
        }
        assert_eq!(flat.labels_used(), 8);
        // every path touches the gateway at least once (its exit hop)
        let gw = topo.default_gateway().switch;
        assert!(flat.counts().per_switch()[gw.index()] >= 8);
        assert!(flat.counts().total() > 8 * 3);
    }

    #[test]
    fn per_flow_multiplies() {
        let topo = small_topology();
        let mut flat = FlatTagBaseline::new(&topo);
        for p in paths(&topo, 1) {
            flat.install(&p);
        }
        let per_flow = per_flow_estimate(flat.counts(), 10);
        assert_eq!(per_flow.total(), flat.counts().total() * 10);
        assert_eq!(per_flow.max(), flat.counts().max() * 10);
    }

    #[test]
    fn location_only_aggregates_siblings() {
        let topo = small_topology();
        let scheme = AddressingScheme::default_scheme();
        let mut loc = LocationOnlyBaseline::new(&topo, scheme);
        for p in paths(&topo, 1) {
            loc.install(&p).unwrap();
        }
        let counts = loc.counts();
        // stations 0,1 hang off agg1 and 2,3 off agg2: at the gateway
        // the four /23 prefixes reduce towards two aggregated routes
        // (or fewer), never four
        let gw = topo.default_gateway().switch;
        assert!(
            counts.per_switch()[gw.index()] <= 2,
            "gateway holds {} routes",
            counts.per_switch()[gw.index()]
        );
        assert!(counts.total() < FlatTagBaseline::new(&topo).counts().total() + 100);
    }

    #[test]
    fn median_and_max_statistics() {
        let c = BaselineCounts {
            counts: vec![0, 5, 3, 9, 0, 1],
        };
        assert_eq!(c.max(), 9);
        assert_eq!(c.median_nonzero(), 5);
        assert_eq!(c.total(), 18);
        let empty = BaselineCounts { counts: vec![0, 0] };
        assert_eq!(empty.median_nonzero(), 0);
    }
}
