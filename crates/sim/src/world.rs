//! The full SoftCell harness: controller + agents + data plane +
//! Internet echo, with end-to-end drivers for attach, flows, round trips
//! and handoffs.
//!
//! This is the integration point every paper promise is checked against:
//! a flow started here produces real packets that traverse real switch
//! pipelines; classification happens where SoftCell says it must (the
//! access edge), the gateway forwards downlink traffic on embedded state
//! alone, and the middlebox tracker witnesses policy consistency.

use std::net::Ipv4Addr;

use softcell_controller::agent::{FlowSetup, LocalAgent};
use softcell_controller::mobility::FlowRecord;
use softcell_controller::{CentralController, ControllerConfig};
use softcell_packet::{build_flow_packet, FiveTuple, FlowNat, HeaderView, Protocol};
use softcell_policy::{ServicePolicy, SubscriberAttributes};
use softcell_topology::Topology;
use softcell_types::{BaseStationId, Error, Result, SimDuration, SimTime, UeId, UeImsi};

use crate::middlebox::{ConnKey, MiddleboxTracker};
use crate::net::{PhysicalNetwork, WalkOutcome};

/// Handle to a connection the world is driving.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConnId(pub usize);

/// One UE-initiated connection.
#[derive(Clone, Debug)]
pub struct Connection {
    /// Owning subscriber.
    pub imsi: UeImsi,
    /// The five-tuple as the UE sends it (permanent source address).
    pub ue_tuple: FiveTuple,
    /// The tuple as the Internet sees it (after the access-edge rewrite),
    /// known after the first uplink packet.
    pub internet_tuple: Option<FiveTuple>,
    /// The middlebox-tracker key, known after the first uplink packet.
    pub key: Option<ConnKey>,
    /// Uplink packets sent.
    pub uplink_sent: u64,
    /// Downlink packets delivered.
    pub downlink_delivered: u64,
}

/// The simulated world.
pub struct SimWorld<'t> {
    topo: &'t Topology,
    /// The central controller.
    pub controller: CentralController<'t>,
    agents: Vec<LocalAgent>,
    /// The data plane.
    pub net: PhysicalNetwork,
    connections: Vec<Connection>,
    now: SimTime,
    next_src_port: u16,
    /// Optional per-flow NAT at the gateway edge (paper §4.1's privacy
    /// mechanism): fresh public endpoints per flow, uncorrelated with
    /// UE location.
    nat: Option<FlowNat>,
    /// DSCP of the most recent uplink packet at gateway exit (QoS
    /// verification).
    last_exit_dscp: Option<u8>,
}

impl<'t> SimWorld<'t> {
    /// Builds a world over a topology with the given service policy.
    pub fn new(topo: &'t Topology, policy: ServicePolicy) -> SimWorld<'t> {
        let cfg = ControllerConfig::simulation();
        let controller = CentralController::new(topo, cfg, policy);
        let agents = topo
            .base_stations()
            .iter()
            .map(|bs| LocalAgent::new(bs.id, bs.radio_port, cfg.scheme, cfg.ports))
            .collect();
        let mut net = PhysicalNetwork::new(topo);
        net.middleboxes = MiddleboxTracker::new(cfg.scheme, cfg.ports);
        SimWorld {
            topo,
            controller,
            agents,
            net,
            connections: Vec::new(),
            now: SimTime::ZERO,
            next_src_port: 49_152,
            nat: None,
            last_exit_dscp: None,
        }
    }

    /// DSCP carried by the most recent uplink packet as it left the
    /// gateway (`None` before any uplink exit).
    pub fn last_uplink_dscp(&self) -> Option<u8> {
        self.last_exit_dscp
    }

    /// Enables the gateway-edge flow NAT (paper §4.1): uplink packets
    /// leaving the gateway are rewritten to a fresh public endpoint per
    /// flow; inbound packets are translated back before entering the
    /// fabric.
    pub fn enable_gateway_nat(&mut self, public_pool: softcell_types::Ipv4Prefix, seed: u64) {
        self.nat = Some(FlowNat::new(public_pool, seed).expect("valid NAT pool"));
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances simulated time.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// The agent of one base station.
    pub fn agent(&self, bs: BaseStationId) -> &LocalAgent {
        &self.agents[bs.index()]
    }

    /// Registers a subscriber.
    pub fn provision(&mut self, attrs: SubscriberAttributes) {
        self.controller.put_subscriber(attrs);
    }

    /// Attaches a UE at a base station (through that station's agent).
    pub fn attach(&mut self, imsi: UeImsi, bs: BaseStationId) -> Result<()> {
        self.agents[bs.index()].handle_attach(imsi, &mut self.controller, self.now)?;
        self.apply_pending_ops()
    }

    /// Detaches a UE (through its current station's agent). Mobility
    /// teardown rules queued by the controller are applied immediately.
    pub fn detach(&mut self, imsi: UeImsi) -> Result<()> {
        let bs = self.controller.state().ue(imsi)?.bs;
        self.agents[bs.index()].handle_detach(imsi, &mut self.controller)?;
        self.apply_pending_ops()
    }

    /// Opens a connection from a UE towards an Internet endpoint.
    pub fn start_connection(
        &mut self,
        imsi: UeImsi,
        dst: Ipv4Addr,
        dst_port: u16,
        proto: Protocol,
    ) -> Result<ConnId> {
        let src_port = self.next_src_port;
        self.next_src_port = self.next_src_port.wrapping_add(1).max(49_152);
        self.start_connection_from_port(imsi, dst, dst_port, proto, src_port)
    }

    /// Opens a connection with an explicit source port (services replying
    /// from their well-known port).
    pub fn start_connection_from_port(
        &mut self,
        imsi: UeImsi,
        dst: Ipv4Addr,
        dst_port: u16,
        proto: Protocol,
        src_port: u16,
    ) -> Result<ConnId> {
        let rec = self.controller.state().ue(imsi)?;
        self.connections.push(Connection {
            imsi,
            ue_tuple: FiveTuple {
                src: rec.permanent_ip,
                dst,
                src_port,
                dst_port,
                proto,
            },
            internet_tuple: None,
            key: None,
            uplink_sent: 0,
            downlink_delivered: 0,
        });
        Ok(ConnId(self.connections.len() - 1))
    }

    /// A connection's record.
    pub fn connection(&self, id: ConnId) -> &Connection {
        &self.connections[id.0]
    }

    /// Sends one uplink packet on a connection: radio → access switch →
    /// (first packet: agent classification) → fabric → gateway exit.
    /// Returns the outcome; on exit, records the Internet-side tuple.
    pub fn send_uplink(&mut self, id: ConnId, payload: &[u8]) -> Result<WalkOutcome> {
        let (imsi, tuple) = {
            let c = &self.connections[id.0];
            (c.imsi, c.ue_tuple)
        };
        let bs = self.controller.state().ue(imsi)?.bs;
        let station = self.topo.base_station(bs);
        let access = station.access_switch;
        let radio = station.radio_port;

        let mut buf = build_flow_packet(tuple, 64, 0, payload);
        let version = self.net.switch(access).ingress_version;
        let mut outcome = self
            .net
            .walk(self.topo, &mut buf, access, radio, version, self.now)?;

        if let WalkOutcome::PuntedToAgent { switch, .. } = outcome {
            if switch != access {
                return Err(Error::InvalidState(format!(
                    "punt at non-origin switch {switch}"
                )));
            }
            // packet-in: the local agent classifies and installs rules
            let view = HeaderView::parse(&buf)?;
            let setup = self.agents[bs.index()].handle_new_flow(
                &view,
                &mut self.controller,
                self.net.switch_mut(access),
                self.now,
            )?;
            self.apply_pending_ops()?;
            if let FlowSetup::Denied { .. } = setup {
                return Ok(WalkOutcome::Dropped { switch: access });
            }
            // the original packet is re-processed (the agent re-injects)
            let mut buf2 = build_flow_packet(tuple, 64, 0, payload);
            outcome = self
                .net
                .walk(self.topo, &mut buf2, access, radio, version, self.now)?;
            buf = buf2;
        }

        if let WalkOutcome::ExitedGateway { .. } = outcome {
            // the middlebox-tracker key comes from the pre-NAT form (the
            // fabric saw LocIPs). Service replies exit with a public
            // source (the gateway restored it in-fabric) and have no
            // LocIP key — their consistency is tracked by the inbound
            // direction instead.
            let fabric_view = HeaderView::parse(&buf)?;
            let key = self
                .net
                .middleboxes
                .key_of(&fabric_view)
                .ok()
                .map(|(k, _)| k);
            // the gateway NAT rewrites to the public endpoint the
            // Internet will actually see
            if let Some(nat) = &mut self.nat {
                nat.translate_outbound(&mut buf)?;
            }
            let exit_view = HeaderView::parse(&buf)?;
            self.last_exit_dscp = Some(exit_view.dscp);
            let c = &mut self.connections[id.0];
            c.uplink_sent += 1;
            if c.internet_tuple.is_none() {
                c.internet_tuple = Some(exit_view.tuple);
                c.key = key;
            }
        }
        Ok(outcome)
    }

    /// Delivers one downlink packet: the Internet endpoint echoes the
    /// connection's tuple; the packet enters at the gateway and must
    /// reach the UE's radio with its permanent address restored.
    pub fn deliver_downlink(&mut self, id: ConnId, payload: &[u8]) -> Result<WalkOutcome> {
        let (imsi, internet_tuple, ue_tuple) = {
            let c = &self.connections[id.0];
            let t = c
                .internet_tuple
                .ok_or_else(|| Error::InvalidState("no uplink packet has exited yet".into()))?;
            (c.imsi, t, c.ue_tuple)
        };
        let gw = self.topo.default_gateway();
        let mut buf = build_flow_packet(internet_tuple.reverse(), 200, 0, payload);
        // inbound NAT: public destination back to the embedded LocIP
        // endpoint before the (dumb) gateway forwards it
        if let Some(nat) = &self.nat {
            nat.translate_inbound(&mut buf)?;
        }
        let version = self.net.switch(gw.switch).ingress_version;
        let outcome = self
            .net
            .walk(self.topo, &mut buf, gw.switch, gw.port, version, self.now)?;

        if let WalkOutcome::DeliveredToRadio { switch } = outcome {
            // delivery correctness: permanent endpoint restored, at the
            // UE's *current* station
            let view = HeaderView::parse(&buf)?;
            if view.dst() != ue_tuple.src || view.dst_port() != ue_tuple.src_port {
                return Err(Error::InvalidState(format!(
                    "delivered to {}:{} instead of {}:{}",
                    view.dst(),
                    view.dst_port(),
                    ue_tuple.src,
                    ue_tuple.src_port
                )));
            }
            let bs = self.controller.state().ue(imsi)?.bs;
            let expected = self.topo.base_station(bs).access_switch;
            if switch != expected {
                return Err(Error::InvalidState(format!(
                    "delivered at {switch}, UE is at {expected}"
                )));
            }
            self.connections[id.0].downlink_delivered += 1;
        }
        Ok(outcome)
    }

    /// One full round trip (uplink then its echo), asserting both legs
    /// complete.
    pub fn round_trip(&mut self, id: ConnId) -> Result<()> {
        match self.send_uplink(id, b"ping")? {
            WalkOutcome::ExitedGateway { .. } => {}
            other => {
                return Err(Error::InvalidState(format!(
                    "uplink did not exit: {other:?}"
                )))
            }
        }
        match self.deliver_downlink(id, b"pong")? {
            WalkOutcome::DeliveredToRadio { .. } => Ok(()),
            other => Err(Error::InvalidState(format!(
                "downlink not delivered: {other:?}"
            ))),
        }
    }

    /// Hands a UE over to a new base station, applying the controller's
    /// plan to the data plane and both agents.
    pub fn handoff(&mut self, imsi: UeImsi, to: BaseStationId) -> Result<()> {
        let old_bs = self.controller.state().ue(imsi)?.bs;
        if old_bs == to {
            return Err(Error::InvalidState("handoff to the same station".into()));
        }
        let old_access = self.topo.base_station(old_bs).access_switch;

        // gather the UE's active flows from the old agent + switch
        let flows: Vec<FlowRecord> = {
            let agent = &self.agents[old_bs.index()];
            let sw = self.net.switch(old_access);
            agent
                .flows_of(imsi)?
                .iter()
                .filter_map(|f| {
                    let up_e = sw.microflow.peek(&f.uplink)?;
                    let down_e = sw.microflow.peek(&f.downlink)?;
                    Some(FlowRecord {
                        uplink: f.uplink,
                        downlink: f.downlink,
                        downlink_original: f.downlink_original,
                        up_action: up_e.action,
                        down_action: down_e.action,
                    })
                })
                .collect()
        };

        // a free UE id at the target station
        let new_ue_id = self.free_ue_id(imsi, to)?;
        let plan = self
            .controller
            .handoff(imsi, to, new_ue_id, &flows, self.now)?;

        // apply: fabric rules, microflow surgery, agent bookkeeping
        self.net.apply_all(&plan.ops)?;
        for t in &plan.old_microflow_removals {
            self.net.switch_mut(old_access).microflow.remove(t);
        }
        let new_access = self.topo.base_station(to).access_switch;
        // Carried entries must not outlive the mobility transition that
        // re-keyed them: once the transition (and its launch specs)
        // expires, a still-live carried entry would make the agent
        // gather the dead flow into the *next* handoff, whose plan then
        // fails for want of launch specs. Expiring both on the same
        // deadline keeps agent, switch and mobility state in lock-step.
        let deadline = self.now + self.controller.mobility().transition_ttl;
        for (tuple, action) in &plan.new_microflow_installs {
            self.net
                .switch_mut(new_access)
                .microflow
                .install(*tuple, *action, deadline)?;
        }
        self.agents[old_bs.index()].evict(imsi)?;
        self.agents[to.index()].adopt(plan.new, plan.classifier.clone())?;
        self.agents[to.index()].adopt_flows(imsi, plan.carried_flows.clone())?;
        Ok(())
    }

    /// Exposes a UE as an Internet-reachable service on a public address
    /// (paper §7, "Traffic initiated from the Internet"): the gateway
    /// "acts like an access switch", holding **coarse-grained,
    /// installed-once** classifiers that translate the public endpoint
    /// to the LocIP + policy tag; the UE-side access switch translates
    /// back for delivery. No per-flow state, no controller round trips
    /// per connection.
    pub fn expose_service(
        &mut self,
        imsi: UeImsi,
        public: Ipv4Addr,
        service_port: u16,
        proto: Protocol,
    ) -> Result<()> {
        let rec = *self.controller.state().ue(imsi)?;
        let scheme = self.controller.config().scheme;
        let ports = self.controller.config().ports;

        // the governing clause, as if the UE had opened the flow itself
        let clause = self.agents[rec.bs.index()]
            .ue(imsi)?
            .classifier
            .classify(proto, service_port)
            .ok_or_else(|| Error::NotFound("no clause for service".into()))?
            .clause;
        let tags = self.controller.request_policy_path(rec.bs, clause)?;
        self.apply_pending_ops()?;

        let loc = scheme.encode(softcell_types::LocIp::new(rec.bs, rec.ue_id))?;
        let gw = self.topo.default_gateway();
        const SERVICE_SLOT: u16 = 0;

        // the gateway's downlink next hop for this path
        let path = self
            .controller
            .routed_path(rec.bs, clause)
            .ok_or_else(|| Error::NotFound("policy path not recorded".into()))?;
        let next = path.hops[path.hops.len() - 2].switch;
        let gw_out = self
            .topo
            .port_towards(gw.switch, next)
            .ok_or_else(|| Error::NotFound("gateway unlinked from path".into()))?;

        use softcell_dataplane::matcher::Match;
        use softcell_dataplane::Action;
        // inbound: public endpoint → (LocIP, tag) + forward onto the
        // policy path (downlink entry carries the uplink exit tag)
        let m_in = Match {
            dst_prefix: Some(softcell_types::Ipv4Prefix::host(public)),
            dst_port: Some((service_port, u16::MAX)),
            proto: Some(proto),
            ..Match::ANY
        };
        self.net.apply(&softcell_controller::RuleOp::Install {
            switch: gw.switch,
            priority: 60_000,
            matcher: m_in,
            action: Action::RewriteDstForward {
                addr: loc,
                port: ports.encode(tags.uplink_exit, SERVICE_SLOT)?,
                out: gw_out,
            },
        })?;

        // delivery at the access switch: coarse rule (not a microflow —
        // the remote endpoint is unknown a priori)
        let access = self.topo.base_station(rec.bs).access_switch;
        let radio = self.topo.base_station(rec.bs).radio_port;
        let m_deliver = Match {
            dst_prefix: Some(softcell_types::Ipv4Prefix::host(loc)),
            dst_port: Some((ports.encode(tags.downlink_final, SERVICE_SLOT)?, u16::MAX)),
            proto: Some(proto),
            ..Match::ANY
        };
        self.net.apply(&softcell_controller::RuleOp::Install {
            switch: access,
            priority: 60_000,
            matcher: m_deliver,
            action: Action::RewriteDstForward {
                addr: rec.permanent_ip,
                port: service_port,
                out: radio,
            },
        })?;

        // replies: when the service answers from its LocIP, the gateway
        // restores the public endpoint before the packet exits
        let m_reply = Match {
            src_prefix: Some(softcell_types::Ipv4Prefix::host(loc)),
            proto: Some(proto),
            ..Match::ANY
        };
        self.net.apply(&softcell_controller::RuleOp::Install {
            switch: gw.switch,
            priority: 60_000,
            matcher: m_reply,
            action: Action::RewriteSrcForward {
                addr: public,
                port: service_port,
                out: gw.port,
            },
        })?;
        Ok(())
    }

    /// Injects an Internet-initiated request towards an exposed service
    /// and walks it to delivery.
    pub fn inbound_request(
        &mut self,
        remote: Ipv4Addr,
        remote_port: u16,
        public: Ipv4Addr,
        service_port: u16,
        proto: Protocol,
        payload: &[u8],
    ) -> Result<(WalkOutcome, Vec<u8>)> {
        let gw = *self.topo.default_gateway();
        let tuple = FiveTuple {
            src: remote,
            dst: public,
            src_port: remote_port,
            dst_port: service_port,
            proto,
        };
        let mut buf = build_flow_packet(tuple, 64, 0, payload);
        let version = self.net.switch(gw.switch).ingress_version;
        let out = self
            .net
            .walk(self.topo, &mut buf, gw.switch, gw.port, version, self.now)?;
        Ok((out, buf))
    }

    /// Opens a mobile-to-mobile connection (paper §7): traffic between
    /// two UEs of this core network takes a direct path through the
    /// clause's middlebox chain, never touching the gateway. Returns a
    /// connection whose `ue_tuple` runs a→b; [`Self::send_m2m`] drives
    /// either direction.
    pub fn start_m2m_connection(
        &mut self,
        a: UeImsi,
        b: UeImsi,
        dst_port: u16,
        proto: Protocol,
    ) -> Result<ConnId> {
        let rec_a = *self.controller.state().ue(a)?;
        let rec_b = *self.controller.state().ue(b)?;
        let scheme = self.controller.config().scheme;
        let ports = self.controller.config().ports;

        let src_port = self.next_src_port;
        self.next_src_port = self.next_src_port.wrapping_add(1).max(49_152);
        let tuple = FiveTuple {
            src: rec_a.permanent_ip,
            dst: rec_b.permanent_ip,
            src_port,
            dst_port,
            proto,
        };

        // the clause comes from the sender's classifier, as for any flow
        let clause = self.agents[rec_a.bs.index()]
            .ue(a)?
            .classifier
            .classify(proto, dst_port)
            .ok_or_else(|| Error::NotFound("no clause for m2m flow".into()))?
            .clause;

        let fwd = self
            .controller
            .request_m2m_path(rec_a.bs, rec_b.bs, clause)?;
        let rev = self
            .controller
            .request_m2m_path(rec_b.bs, rec_a.bs, clause)?;
        self.apply_pending_ops()?;

        let slot = (self.connections.len() % 32) as u16;
        let loc_a = scheme.encode(softcell_types::LocIp::new(rec_a.bs, rec_a.ue_id))?;
        let loc_b = scheme.encode(softcell_types::LocIp::new(rec_b.bs, rec_b.ue_id))?;
        let access_a = self.topo.base_station(rec_a.bs).access_switch;
        let access_b = self.topo.base_station(rec_b.bs).access_switch;
        let radio_a = self.topo.base_station(rec_a.bs).radio_port;
        let radio_b = self.topo.base_station(rec_b.bs).radio_port;
        let deadline = self.now + SimDuration::from_secs(300);

        // a → b: rewrite the destination to b's LocIP carrying the tag
        self.net.switch_mut(access_a).microflow.install(
            tuple,
            softcell_dataplane::MicroflowAction::RewriteDst {
                addr: loc_b,
                port: ports.encode(fwd.uplink_entry, slot)?,
                out: fwd.access_out_port,
            },
            deadline,
        )?;
        // delivery at b
        let arriving_ab = FiveTuple {
            dst: loc_b,
            dst_port: ports.encode(fwd.downlink_final, slot)?,
            ..tuple
        };
        self.net.switch_mut(access_b).microflow.install(
            arriving_ab,
            softcell_dataplane::MicroflowAction::RewriteDst {
                addr: rec_b.permanent_ip,
                port: dst_port,
                out: radio_b,
            },
            deadline,
        )?;
        // b → a mirror
        let reply = tuple.reverse();
        self.net.switch_mut(access_b).microflow.install(
            reply,
            softcell_dataplane::MicroflowAction::RewriteDst {
                addr: loc_a,
                port: ports.encode(rev.uplink_entry, slot)?,
                out: rev.access_out_port,
            },
            deadline,
        )?;
        let arriving_ba = FiveTuple {
            dst: loc_a,
            dst_port: ports.encode(rev.downlink_final, slot)?,
            ..reply
        };
        self.net.switch_mut(access_a).microflow.install(
            arriving_ba,
            softcell_dataplane::MicroflowAction::RewriteDst {
                addr: rec_a.permanent_ip,
                port: src_port,
                out: radio_a,
            },
            deadline,
        )?;

        self.connections.push(Connection {
            imsi: a,
            ue_tuple: tuple,
            internet_tuple: None,
            key: None,
            uplink_sent: 0,
            downlink_delivered: 0,
        });
        Ok(ConnId(self.connections.len() - 1))
    }

    /// Sends one m2m packet (a→b when `forward`, b→a otherwise) and
    /// checks delivery at the peer's radio with the permanent endpoint
    /// restored.
    pub fn send_m2m(&mut self, id: ConnId, forward: bool, payload: &[u8]) -> Result<WalkOutcome> {
        let tuple = {
            let t = self.connections[id.0].ue_tuple;
            if forward {
                t
            } else {
                t.reverse()
            }
        };
        // resolve sender/receiver stations by permanent address
        let (sender_bs, expect_dst, expect_port) = {
            let mut sender = None;
            for rec in self.controller.state().attached() {
                if rec.permanent_ip == tuple.src {
                    sender = Some(rec.bs);
                }
            }
            (
                sender.ok_or_else(|| Error::NotFound("m2m sender not attached".into()))?,
                tuple.dst,
                tuple.dst_port,
            )
        };
        let station = self.topo.base_station(sender_bs);
        let mut buf = build_flow_packet(tuple, 64, 0, payload);
        let version = self.net.switch(station.access_switch).ingress_version;
        let out = self.net.walk(
            self.topo,
            &mut buf,
            station.access_switch,
            station.radio_port,
            version,
            self.now,
        )?;
        if let WalkOutcome::DeliveredToRadio { .. } = out {
            let view = HeaderView::parse(&buf)?;
            if view.dst() != expect_dst || view.dst_port() != expect_port {
                return Err(Error::InvalidState(format!(
                    "m2m delivered to {}:{} instead of {}:{}",
                    view.dst(),
                    view.dst_port(),
                    expect_dst,
                    expect_port
                )));
            }
            if forward {
                self.connections[id.0].uplink_sent += 1;
            } else {
                self.connections[id.0].downlink_delivered += 1;
            }
        }
        Ok(out)
    }

    /// Installs a §5.1 shortcut for one connection: per-flow rules that
    /// splice its downlink from the best meet point on the old policy
    /// path directly to the UE's current station, cutting the triangle
    /// through the anchor. Call after a handoff.
    pub fn install_shortcut(&mut self, id: ConnId) -> Result<()> {
        let imsi = self.connections[id.0].imsi;
        let ue_tuple = self.connections[id.0].ue_tuple;
        let rec = *self.controller.state().ue(imsi)?;
        let agent = &self.agents[rec.bs.index()];
        let flow = agent
            .flows_of(imsi)?
            .iter()
            .find(|f| f.uplink == ue_tuple)
            .copied()
            .ok_or_else(|| Error::NotFound("connection has no agent flow record".into()))?;

        // the anchor and clause identify the old policy path
        let scheme = self.controller.config().scheme;
        let anchor_bs = scheme.decode(flow.downlink_original.dst)?.base_station;
        let clause = agent
            .ue(imsi)?
            .classifier
            .classify(ue_tuple.proto, ue_tuple.dst_port)
            .ok_or_else(|| Error::NotFound("no clause for connection".into()))?
            .clause;
        let old_path: Vec<softcell_types::SwitchId> = self
            .controller
            .routed_path(anchor_bs, clause)
            .ok_or_else(|| Error::NotFound("old policy path not recorded".into()))?
            .hops
            .iter()
            .map(|h| h.switch)
            .collect();

        let ops =
            self.controller
                .install_shortcut(imsi, &old_path, flow.downlink_original, self.now)?;
        self.net.apply_all(&ops)?;

        // shortcut packets arrive with the *original* tag (they bypass
        // the anchor's tunnel rewrite): the current station needs an
        // original-keyed delivery entry alongside the tunnel-keyed one
        let new_access = self.topo.base_station(rec.bs).access_switch;
        let radio = self.topo.base_station(rec.bs).radio_port;
        self.net.switch_mut(new_access).microflow.install(
            flow.downlink_original,
            softcell_dataplane::MicroflowAction::RewriteDst {
                addr: ue_tuple.src,
                port: ue_tuple.src_port,
                out: radio,
            },
            self.now + SimDuration::from_secs(300),
        )?;
        Ok(())
    }

    /// Runs the §3.2 offline recompute and applies its migration to the
    /// data plane: fabric rules are swapped for the leaner recomputed
    /// set and every agent's tag cache is flushed (the cached tags name
    /// retired rules). Established connections must re-classify on
    /// their next flow; in-flight microflow entries drain naturally.
    pub fn apply_reoptimization(&mut self) -> Result<softcell_controller::offline::OfflineOutcome> {
        let outcome = self.controller.reoptimize_paths()?;
        self.apply_pending_ops()?;
        for agent in &mut self.agents {
            agent.clear_tag_cache();
        }
        Ok(outcome)
    }

    /// Crashes and restarts one base station's local agent, refetching
    /// its state from the controller (the §5.2 recovery drill). The
    /// access switch's microflow entries survive (the switch did not
    /// crash); the agent's caches are rebuilt.
    pub fn restart_agent(&mut self, bs: BaseStationId) -> Result<usize> {
        let grants = self.controller.grants_for_station(bs)?;
        self.agents[bs.index()].restart_from(grants)
    }

    /// Retires agent-side flow records whose microflow entries have
    /// idled out of their access switches, freeing the UEs' flow slots
    /// (see `LocalAgent::retire_expired_flows`). Returns the number of
    /// flows retired across all stations. Call alongside
    /// `microflow.expire_idle` at housekeeping boundaries — long
    /// campaigns leak slots without it.
    pub fn retire_expired_flows(&mut self) -> usize {
        let mut retired = 0;
        for bs in self.topo.base_stations() {
            let sw = self.net.switch(bs.access_switch);
            retired += self.agents[bs.id.index()].retire_expired_flows(sw);
        }
        retired
    }

    /// Asserts policy consistency for every connection that has carried
    /// traffic.
    pub fn assert_policy_consistency(&self) -> Result<()> {
        for c in &self.connections {
            if let Some(key) = c.key {
                self.net.middleboxes.assert_consistent(&key)?;
            }
        }
        Ok(())
    }

    fn free_ue_id(&self, imsi: UeImsi, bs: BaseStationId) -> Result<UeId> {
        // lowest id neither occupied nor reserved at the station
        for cand in 0..self.controller.config().scheme.max_ues_per_station() {
            let id = UeId(cand as u16);
            if self.controller.state().location_available(bs, id, imsi) {
                return Ok(id);
            }
        }
        Err(Error::Exhausted(format!("{bs} has no free UE ids")))
    }

    fn apply_pending_ops(&mut self) -> Result<()> {
        // drain through the per-switch batched form — the same path the
        // sharded controller ships over the wire as `flow_mod_batch` —
        // so every simulation run exercises batching + barrier framing
        for batch in self.controller.drain_op_batches() {
            debug_assert!(batch.barrier, "controller batches are barrier-fenced");
            self.net.apply_all(&batch.ops)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcell_topology::small_topology;

    fn world(topo: &Topology) -> SimWorld<'_> {
        let mut w = SimWorld::new(topo, ServicePolicy::example_carrier_a(1));
        for i in 0..8 {
            w.provision(SubscriberAttributes::default_home(UeImsi(i)));
        }
        w
    }

    const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    #[test]
    fn web_flow_round_trips_through_firewall() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
        w.assert_policy_consistency().unwrap();

        // the catch-all clause routes through the firewall, both ways
        let key = w.connection(c).key.unwrap();
        let fw = topo.instances_of(softcell_types::MiddleboxKind::Firewall)[0];
        assert_eq!(w.net.middleboxes.chain_of(&key, true), vec![fw]);
        assert_eq!(w.net.middleboxes.chain_of(&key, false), vec![fw]);
    }

    #[test]
    fn video_flow_traverses_firewall_then_transcoder() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(1)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 554, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
        let key = w.connection(c).key.unwrap();
        let fw = topo.instances_of(softcell_types::MiddleboxKind::Firewall)[0];
        let tc = topo.instances_of(softcell_types::MiddleboxKind::Transcoder)[0];
        assert_eq!(w.net.middleboxes.chain_of(&key, true), vec![fw, tc]);
        assert_eq!(
            w.net.middleboxes.chain_of(&key, false),
            vec![tc, fw],
            "downlink mirrors the chain"
        );
        w.assert_policy_consistency().unwrap();
    }

    #[test]
    fn second_flow_same_clause_skips_controller() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c1 = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        let c2 = w
            .start_connection(UeImsi(0), SERVER, 80, Protocol::Tcp)
            .unwrap();
        w.round_trip(c1).unwrap();
        w.round_trip(c2).unwrap();
        let stats = w.agent(BaseStationId(0)).stats();
        assert_eq!(stats.cache_misses, 1, "only the first flow escalates");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn foreign_subscriber_is_dropped_at_the_edge() {
        let topo = small_topology();
        let mut w = world(&topo);
        let mut attrs = SubscriberAttributes::default_home(UeImsi(6));
        attrs.provider = softcell_policy::Provider::Foreign(4);
        w.provision(attrs);
        w.attach(UeImsi(6), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(6), SERVER, 443, Protocol::Tcp)
            .unwrap();
        let out = w.send_uplink(c, b"x").unwrap();
        assert!(matches!(out, WalkOutcome::Dropped { .. }));
        assert_eq!(w.net.middleboxes.total_packets(), 0);
    }

    #[test]
    fn gateway_performs_no_classification() {
        // The gateway's flow table must contain no microflow-grade
        // entries: downlink forwarding rides on tag/prefix rules alone.
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
        let gw = w.net.switch(topo.default_gateway().switch);
        assert_eq!(gw.microflow.len(), 0, "no microflow state at the gateway");
        for rule in gw.table.iter() {
            // every gateway rule is a tag and/or prefix rule, never an
            // exact five-tuple
            assert!(
                rule.matcher
                    .dst_port
                    .map(|(_, m)| m != u16::MAX)
                    .unwrap_or(true),
                "gateway rule {rule} matches an exact port"
            );
        }
    }

    #[test]
    fn packets_of_two_ues_stay_separate() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        w.attach(UeImsi(1), BaseStationId(0)).unwrap();
        let c0 = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        let c1 = w
            .start_connection(UeImsi(1), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c0).unwrap();
        w.round_trip(c1).unwrap();
        let k0 = w.connection(c0).key.unwrap();
        let k1 = w.connection(c1).key.unwrap();
        assert_ne!(k0, k1, "distinct UEs have distinct LocIPs");
        w.assert_policy_consistency().unwrap();
    }

    #[test]
    fn handoff_preserves_policy_consistency() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 554, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();

        // move to a station under the other aggregation switch
        w.handoff(UeImsi(0), BaseStationId(3)).unwrap();

        // the old flow keeps working in both directions...
        w.round_trip(c).unwrap();
        // ...through the same middlebox instances
        w.assert_policy_consistency().unwrap();
        // and is delivered at the new station (checked inside
        // deliver_downlink against the controller's location record)
        assert_eq!(
            w.controller.state().ue(UeImsi(0)).unwrap().bs,
            BaseStationId(3)
        );
    }

    #[test]
    fn new_flow_after_handoff_uses_new_location() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c_old = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c_old).unwrap();
        w.handoff(UeImsi(0), BaseStationId(3)).unwrap();

        let c_new = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c_new).unwrap();

        let scheme = w.controller.config().scheme;
        let old_loc = scheme.decode(w.connection(c_old).key.unwrap().loc).unwrap();
        let new_loc = scheme.decode(w.connection(c_new).key.unwrap().loc).unwrap();
        assert_eq!(
            old_loc.base_station,
            BaseStationId(0),
            "old flow keeps old LocIP"
        );
        assert_eq!(
            new_loc.base_station,
            BaseStationId(3),
            "new flow gets new LocIP"
        );
        w.assert_policy_consistency().unwrap();
    }

    #[test]
    fn handoff_chain_releases_reserved_locations_exactly_once() {
        // A → B → C → A with a live flow: every vacated location stays
        // reserved while the transition lives, is released exactly once
        // on expiry, and is immediately reusable by another UE.
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
        for bs in [1u32, 2, 0] {
            w.handoff(UeImsi(0), BaseStationId(bs)).unwrap();
            w.round_trip(c).unwrap();
        }
        // stations 1 and 2 were vacated mid-chain; the home slot at 0 is
        // live again (the UE returned), so exactly two reservations hold
        assert_eq!(w.controller.state().reserved_count(), 2);
        assert!(!w
            .controller
            .state()
            .location_available(BaseStationId(1), UeId(0), UeImsi(1)));

        w.advance(SimDuration::from_secs(1_000));
        let now = w.now();
        assert_eq!(w.controller.mobility().transitions_active(), 1);
        // the home transition's rules were already torn down mid-chain
        // (each handoff supersedes the previous transition), so expiry
        // may produce no ops — its job here is releasing reservations
        let ops = w.controller.expire_transitions(now);
        w.net.apply_all(&ops).unwrap();
        assert_eq!(w.controller.mobility().transitions_active(), 0);
        assert_eq!(w.controller.state().reserved_count(), 0, "released once");

        // released exactly once: a second expiry pass finds nothing
        assert!(w.controller.expire_transitions(now).is_empty());
        assert_eq!(w.controller.state().reserved_count(), 0);

        // re-attach at a released location succeeds: the exact slot the
        // UE vacated at station 2 is available to a new subscriber
        assert!(w
            .controller
            .state()
            .location_available(BaseStationId(2), UeId(0), UeImsi(2)));
        w.controller
            .attach_ue(UeImsi(2), BaseStationId(2), UeId(0), now)
            .unwrap();
        // and an agent-driven attach at the other released station works
        w.attach(UeImsi(1), BaseStationId(1)).unwrap();
        let c1 = w
            .start_connection(UeImsi(1), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c1).unwrap();
        w.assert_policy_consistency().unwrap();
    }

    #[test]
    fn handoff_into_full_microflow_table_evicts_instead_of_failing() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();

        // cram the destination access switch: capacity 2, both slots
        // taken by idle filler entries expiring soon
        let dest_access = topo.base_station(BaseStationId(3)).access_switch;
        let mut full = softcell_dataplane::MicroflowTable::with_capacity(2);
        for port in [1u16, 2] {
            full.install(
                FiveTuple {
                    src: Ipv4Addr::new(100, 64, 0, 200),
                    dst: SERVER,
                    src_port: port,
                    dst_port: 80,
                    proto: Protocol::Tcp,
                },
                softcell_dataplane::MicroflowAction::Drop,
                w.now() + SimDuration::from_secs(1),
            )
            .unwrap();
        }
        w.net.switch_mut(dest_access).microflow = full;

        // the handoff copies the moving UE's uplink + downlink entries;
        // the idle-soonest fillers give way instead of Exhausted
        w.handoff(UeImsi(0), BaseStationId(3)).unwrap();
        let table = &w.net.switch(dest_access).microflow;
        assert_eq!(table.evictions(), 2, "both fillers evicted");
        assert_eq!(table.len(), 2);
        w.round_trip(c).unwrap();
        w.assert_policy_consistency().unwrap();
    }

    #[test]
    fn detach_then_flow_fails() {
        let topo = small_topology();
        let mut w = world(&topo);
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        w.detach(UeImsi(0)).unwrap();
        assert!(w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .is_err());
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use softcell_topology::CellularParams;

    const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    #[test]
    fn chained_handoffs_keep_flows_alive() {
        let topo = CellularParams::paper(2).build().unwrap();
        let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
        w.provision(SubscriberAttributes::default_home(UeImsi(0)));
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
        // neighbour-hop chain: 0 -> 1 -> 2 -> 1 -> 0 (includes return home)
        for bs in [1u32, 2, 1, 0] {
            w.handoff(UeImsi(0), BaseStationId(bs)).unwrap();
            w.round_trip(c).unwrap();
        }
        w.assert_policy_consistency().unwrap();
    }

    /// Regression: carried microflow entries must expire with the
    /// transition that re-keyed them. They used to get a flat 300 s
    /// deadline — longer than the 120 s transition TTL — so after
    /// `expire_transitions` reaped the transition (and its launch
    /// specs), the dead flow still *looked* live to the agent, got
    /// gathered into the next handoff, and the plan failed with
    /// "no launch specs for anchor".
    #[test]
    fn carried_flows_do_not_outlive_their_transition() {
        let topo = CellularParams::paper(2).build().unwrap();
        let mut w = SimWorld::new(&topo, ServicePolicy::example_carrier_a(1));
        w.provision(SubscriberAttributes::default_home(UeImsi(0)));
        w.attach(UeImsi(0), BaseStationId(0)).unwrap();
        let c = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c).unwrap();
        // the flow rides along to bs1; its carried entries are keyed
        // under the bs0 anchor and must die with the transition
        w.handoff(UeImsi(0), BaseStationId(1)).unwrap();

        // let the transition TTL lapse, then run the same housekeeping
        // a long campaign runs: reap transitions, idle entries, and
        // agent flow records whose entries are gone
        let ttl = w.controller.mobility().transition_ttl;
        w.advance(ttl + SimDuration::from_secs(1));
        let now = w.now();
        let ops = w.controller.expire_transitions(now);
        w.net.apply_all(&ops).unwrap();
        for sw in w.net.switches_mut() {
            sw.microflow.expire_idle(now);
        }
        let retired = w.retire_expired_flows();
        assert!(retired >= 1, "the dead carried flow must be retired");

        // a further handoff must not trip over the expired anchor
        w.handoff(UeImsi(0), BaseStationId(2)).unwrap();
        let c2 = w
            .start_connection(UeImsi(0), SERVER, 443, Protocol::Tcp)
            .unwrap();
        w.round_trip(c2).unwrap();
        w.assert_policy_consistency().unwrap();
    }
}
