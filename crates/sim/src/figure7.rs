//! The §6.3 large-scale simulation driver (Figure 7).
//!
//! Methodology, reproduced from the paper: build the three-layer
//! synthetic topology for parameter `k` (10k³/4 base stations); deploy
//! `k` middlebox kinds (one instance per kind per pod, two per kind in
//! the core); generate `n` policy clauses, each traversing `m` randomly
//! chosen middlebox instances; instantiate each clause's policy path
//! from *every* base station to the gateway; run the online Algorithm 1
//! over the resulting path stream; report the maximum and median switch
//! flow-table size.
//!
//! Instance interpretation (the paper's wording is ambiguous): the
//! default, [`InstanceChoice::NearestPerStation`], draws `m` random
//! *kinds* per clause and lets each station use the nearest instance of
//! each kind — matching Fig. 3(c)'s regional dispatch and the
//! controller's own latency-minimizing selection (§2.2). Two
//! alternatives are implemented for sensitivity analysis: shared random
//! instances per clause ([`InstanceChoice::PerClause`]) and fully random
//! per station ([`InstanceChoice::PerStation`]).
//!
//! Paper reference points: n=1000, m=5, k=8 → median 1214 / max 1697
//! rules; table size grows linearly in `n` (slope < 2) and in `m`, and
//! *decreases* with network size `k`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use softcell_controller::install::Direction;
use softcell_controller::{PathInstaller, TagPolicy};
use softcell_topology::{CellularParams, ShortestPaths, SwitchRole, Topology};
use softcell_types::{
    AddressingScheme, BaseStationId, Ipv4Prefix, MiddleboxId, MiddleboxKind, Result,
};

/// How middlebox instances are assigned to a clause's paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum InstanceChoice {
    /// Each clause names `m` random middlebox *kinds*; every station
    /// uses the nearest instance of each kind, walked greedily from its
    /// access switch (the default — it matches Fig. 3(c)'s regional
    /// dispatch, clause traffic of AS1/AS2 to Transcoder1 and AS3/AS4 to
    /// Transcoder2, and the controller's own latency-minimizing
    /// selection of §2.2).
    NearestPerStation,
    /// `m` concrete instances drawn once per clause, shared by all
    /// stations network-wide.
    PerClause,
    /// Fresh random instances per (clause, station) — a stress variant.
    PerStation,
}

/// One Figure 7 data point's configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Figure7Config {
    /// Topology parameter (10k³/4 base stations).
    pub k: usize,
    /// Number of service-policy clauses.
    pub n_clauses: usize,
    /// Middleboxes per policy path.
    pub m_chain: usize,
    /// Instance assignment mode.
    pub choice: InstanceChoice,
    /// RNG seed.
    pub seed: u64,
    /// Tag space available to the installer.
    pub tag_capacity: u16,
}

impl Figure7Config {
    /// The paper's base configuration: k=8, n=1000, m=5.
    pub fn paper_base() -> Self {
        Figure7Config {
            k: 8,
            n_clauses: 1000,
            m_chain: 5,
            choice: InstanceChoice::NearestPerStation,
            seed: 2013,
            tag_capacity: u16::MAX,
        }
    }
}

/// The measured outcome of one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure7Result {
    /// The configuration.
    pub config: Figure7Config,
    /// Base stations in the topology.
    pub base_stations: usize,
    /// Policy paths installed (n × stations).
    pub paths_installed: usize,
    /// Max rules over fabric switches (aggregation + core + gateway).
    pub max_rules: usize,
    /// Median rules over fabric switches.
    pub median_rules: usize,
    /// Mean rules over fabric switches.
    pub mean_rules: f64,
    /// Max rules including access-layer switches.
    pub max_rules_all: usize,
    /// Total rules network-wide.
    pub total_rules: usize,
    /// Distinct tags consumed.
    pub tags_used: usize,
    /// Tag-swap rules installed (loop disambiguation).
    pub swap_rules: usize,
}

/// Runs one Figure 7 configuration.
pub fn run(config: Figure7Config) -> Result<Figure7Result> {
    let topo = CellularParams::paper(config.k).build()?;
    run_on(&topo, config)
}

/// Runs a configuration on a pre-built topology (lets sweeps share the
/// expensive k=20 build).
pub fn run_on(topo: &Topology, config: Figure7Config) -> Result<Figure7Result> {
    // Dense, cluster-contiguous station numbering (the generator's
    // default) is the best-aggregating assignment: sibling merges work
    // across cluster and pod boundaries. Padding stations to
    // power-of-two blocks (see [`aligned_prefixes`]) looks attractive
    // but *defeats* aggregation — measured 30x worse hot-switch tables —
    // because the padding gaps leave sibling pairs forever incomplete.
    let scheme = scheme_for(topo)?;
    let mut installer = PathInstaller::new(
        topo,
        scheme,
        TagPolicy {
            capacity: config.tag_capacity,
            ..TagPolicy::default()
        },
    );
    let mut sp = ShortestPaths::new(topo);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let gw = topo.default_gateway().switch;
    let kinds: Vec<MiddleboxKind> = MiddleboxKind::enumerate(topo.middlebox_kinds().count());
    let stations = topo.base_stations().len();

    let mut paths_installed = 0usize;
    let mut swap_rules = 0usize;
    for _clause in 0..config.n_clauses {
        let clause_instances = random_chain(&mut rng, topo, &kinds, config.m_chain);
        let clause_kinds = random_kinds(&mut rng, &kinds, config.m_chain);
        for bs in 0..stations {
            let origin = BaseStationId(bs as u32);
            let instances = match config.choice {
                InstanceChoice::NearestPerStation => {
                    nearest_chain(topo, &mut sp, origin, &clause_kinds)
                }
                InstanceChoice::PerClause => clause_instances.clone(),
                InstanceChoice::PerStation => random_chain(&mut rng, topo, &kinds, config.m_chain),
            };
            let path = sp.route_policy_path(origin, &instances, gw)?;
            let report = installer.install_path(&path, Direction::Downlink)?;
            swap_rules += report.swap_rules;
            paths_installed += 1;
        }
    }

    // statistics over fabric switches (aggregation + core + gateway) —
    // access switches are software and are reported separately
    let shadows = installer.shadows(Direction::Downlink);
    let mut fabric: Vec<usize> = Vec::new();
    let mut all_max = 0usize;
    let mut total = 0usize;
    for sw in topo.switches() {
        let rules = shadows.switch(sw.id).rule_count();
        total += rules;
        all_max = all_max.max(rules);
        if sw.role != SwitchRole::Access {
            fabric.push(rules);
        }
    }
    if std::env::var("FIG7_DUMP_TOP").is_ok() {
        let mut by_rules: Vec<_> = topo
            .switches()
            .iter()
            .map(|sw| {
                let sh = shadows.switch(sw.id);
                let (t1, t2) = sh.occupancy();
                (sh.rule_count(), sw.id, sw.role, t1, t2)
            })
            .collect();
        by_rules.sort_unstable_by_key(|r| std::cmp::Reverse(r.0));
        for (rules, id, role, t1, t2) in by_rules.iter().take(8) {
            eprintln!("  top: {id} {role:?} rules={rules} type1={t1} type2={t2}");
        }
    }
    fabric.sort_unstable();
    let median_rules = fabric[fabric.len() / 2];
    let max_rules = *fabric.last().unwrap_or(&0);
    let mean_rules = fabric.iter().sum::<usize>() as f64 / fabric.len().max(1) as f64;

    Ok(Figure7Result {
        config,
        base_stations: stations,
        paths_installed,
        max_rules,
        median_rules,
        mean_rules,
        max_rules_all: all_max,
        total_rules: total,
        tags_used: installer.tags_in_use(),
        swap_rules,
    })
}

/// An addressing scheme wide enough for the topology's station count.
pub fn scheme_for(topo: &Topology) -> Result<AddressingScheme> {
    AddressingScheme::sized_for(
        Ipv4Prefix::from_bits(0x0A00_0000, 8),
        topo.base_stations().len(),
        500,
    )
}

/// Power-of-two-padded station prefixes — kept as a documented
/// *negative result*. The intuition (paper §3.1's "operators align IP
/// prefixes with the topology") suggests padding each cluster/pod to a
/// power-of-two id block so every dispatch level is one prefix; in
/// practice the padding gaps mean sibling pairs never complete and
/// upward merging stalls at the sub-cluster level, measuring ~30x worse
/// hot-switch tables than dense cluster-contiguous numbering (which is
/// itself topology-aligned — the generator numbers stations in cluster
/// and pod order). See EXPERIMENTS.md.
pub fn aligned_prefixes(params: &CellularParams) -> Result<(AddressingScheme, Vec<Ipv4Prefix>)> {
    let cluster_stride = params.bs_per_cluster.next_power_of_two();
    let clusters_per_pod = (params.k / 2) * (params.k / 2);
    let pod_stride = (clusters_per_pod * cluster_stride).next_power_of_two();
    let id_space = params.k * pod_stride;

    // the padded id space needs more station bits; UE-id width is not
    // exercised by the rule-count experiments, so give it the minimum
    let carrier = Ipv4Prefix::from_bits(0x0A00_0000, 8);
    let bs_bits = (usize::BITS - (id_space.max(2) - 1).leading_zeros()) as u8;
    let ue_bits = 32 - carrier.len() - bs_bits;
    let scheme = AddressingScheme::new(carrier, bs_bits, ue_bits)?;

    let mut prefixes = Vec::with_capacity(params.base_station_count());
    for bs in 0..params.base_station_count() {
        let cluster = bs / params.bs_per_cluster;
        let pos = bs % params.bs_per_cluster;
        let pod = cluster / clusters_per_pod;
        let cluster_in_pod = cluster % clusters_per_pod;
        let padded = pod * pod_stride + cluster_in_pod * cluster_stride + pos;
        prefixes.push(scheme.base_station_prefix(softcell_types::BaseStationId(padded as u32))?);
    }
    Ok((scheme, prefixes))
}

/// `m` random distinct middlebox kinds.
fn random_kinds(rng: &mut StdRng, kinds: &[MiddleboxKind], m: usize) -> Vec<MiddleboxKind> {
    let m = m.min(kinds.len());
    let mut idx: Vec<usize> = (0..kinds.len()).collect();
    for i in 0..m {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..m].iter().map(|&i| kinds[i]).collect()
}

/// The greedy nearest-instance chain for one station: for each kind in
/// order, the instance closest to the current path cursor.
fn nearest_chain(
    topo: &Topology,
    sp: &mut ShortestPaths<'_>,
    origin: BaseStationId,
    kinds: &[MiddleboxKind],
) -> Vec<MiddleboxId> {
    let mut cursor = topo.base_station(origin).access_switch;
    kinds
        .iter()
        .map(|&kind| {
            let mb = *topo
                .instances_of(kind)
                .iter()
                .min_by_key(|&&mb| {
                    sp.distance(cursor, topo.middlebox(mb).switch)
                        .unwrap_or(u32::MAX)
                })
                .expect("every kind is deployed");
            cursor = topo.middlebox(mb).switch;
            mb
        })
        .collect()
}

fn random_chain(
    rng: &mut StdRng,
    topo: &Topology,
    _kinds: &[MiddleboxKind],
    m: usize,
) -> Vec<MiddleboxId> {
    // "A policy path traverses m randomly chosen middlebox instances"
    // (§6.3): m distinct instances drawn from the full deployment.
    let total = topo.middlebox_count();
    let m = m.min(total);
    let mut idx: Vec<usize> = (0..total).collect();
    // partial Fisher–Yates for the first m
    for i in 0..m {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..m].iter().map(|&i| MiddleboxId(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down sweep used by tests (k=4 keeps runtime tiny).
    fn tiny(n: usize, m: usize) -> Figure7Config {
        Figure7Config {
            k: 4,
            n_clauses: n,
            m_chain: m,
            choice: InstanceChoice::PerClause,
            seed: 7,
            tag_capacity: u16::MAX,
        }
    }

    #[test]
    fn paths_install_and_tables_stay_small() {
        let r = run(tiny(20, 3)).unwrap();
        assert_eq!(r.base_stations, 160);
        assert_eq!(r.paths_installed, 20 * 160);
        assert!(r.max_rules > 0);
        // the headline property: per-switch state is a small fraction of
        // the path count even at this tiny, concentration-prone scale
        // (k=4 has only 33 fabric switches for 160 stations)
        assert!(
            r.max_rules < r.paths_installed / 5,
            "max {} vs paths {}",
            r.max_rules,
            r.paths_installed
        );
        assert!(r.median_rules <= r.max_rules);
    }

    #[test]
    fn table_size_grows_mildly_with_clauses() {
        let r1 = run(tiny(10, 3)).unwrap();
        let r2 = run(tiny(20, 3)).unwrap();
        assert!(r2.median_rules > r1.median_rules / 2, "grows with n");
        // linear-ish, not quadratic: doubling n at most ~triples tables
        assert!(
            r2.median_rules <= r1.median_rules * 3 + 10,
            "n=10 → {}, n=20 → {}",
            r1.median_rules,
            r2.median_rules
        );
    }

    #[test]
    fn per_station_choice_costs_more() {
        let shared = run(tiny(10, 3)).unwrap();
        let per_station = run(Figure7Config {
            choice: InstanceChoice::PerStation,
            ..tiny(10, 3)
        })
        .unwrap();
        assert!(
            per_station.total_rules > shared.total_rules,
            "random per-station instances defeat sharing: {} vs {}",
            per_station.total_rules,
            shared.total_rules
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(tiny(5, 3)).unwrap();
        let b = run(tiny(5, 3)).unwrap();
        assert_eq!(a.total_rules, b.total_rules);
        assert_eq!(a.tags_used, b.tags_used);
    }

    #[test]
    fn aligned_prefixes_are_disjoint_and_cluster_blocked() {
        let params = CellularParams::paper(4);
        let (scheme, prefixes) = aligned_prefixes(&params).unwrap();
        assert_eq!(prefixes.len(), params.base_station_count());
        // pairwise disjoint (spot-check adjacent and cross-cluster pairs)
        for w in prefixes.windows(2) {
            assert!(!w[0].overlaps(&w[1]), "{} overlaps {}", w[0], w[1]);
        }
        // the first cluster occupies a 16-id block: station 0 and the
        // first station of cluster 2 differ in the block bits
        let span0 = prefixes[0].network();
        let span_next = prefixes[params.bs_per_cluster].network();
        assert_ne!(span0, span_next);
        let _ = scheme;
    }

    #[test]
    fn chain_has_distinct_instances() {
        let topo = CellularParams::paper(4).build().unwrap();
        let kinds: Vec<MiddleboxKind> = MiddleboxKind::enumerate(topo.middlebox_kinds().count());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let chain = random_chain(&mut rng, &topo, &kinds, 3);
            let mut c = chain.clone();
            c.sort();
            c.dedup();
            assert_eq!(c.len(), chain.len(), "instances must be distinct");
        }
    }
}
