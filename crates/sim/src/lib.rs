//! End-to-end SoftCell network simulation.
//!
//! Everything below the controller is real here: packets are bytes,
//! switches run their lookup pipelines, middleboxes record the
//! connections they see. The simulator wires the pieces of the other
//! crates into a running network and checks the architecture's
//! *promises*:
//!
//! * flows reach the Internet through exactly the middlebox chain their
//!   clause prescribes, and the return traffic retraces it — in reverse
//!   order, through the *same instances* (paper §2.1, §5.1);
//! * the gateway edge performs no classification: downlink forwarding
//!   succeeds purely on the embedded destination state (§4.1);
//! * handoffs preserve policy consistency for ongoing flows while new
//!   flows take fresh paths (§5.1).
//!
//! Modules:
//! * [`net`] — the physical network: switches built from a topology,
//!   rule application, and the hop-by-hop packet walker.
//! * [`middlebox`] — stateful middlebox instances tracking per-connection
//!   traversals (the policy-consistency witness).
//! * [`world`] — the full harness: controller + agents + network +
//!   Internet echo, with attach/flow/handoff drivers.
//! * [`baseline`] — rule-count comparators (flat tag routing, per-flow
//!   rules, location-only routing) for the aggregation ablation.
//! * [`figure7`] — the §6.3 large-scale rule-count experiment driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod figure7;
pub mod middlebox;
pub mod net;
pub mod world;

pub use figure7::{Figure7Config, Figure7Result};
pub use middlebox::{ConsistencyAuditor, MiddleboxTracker};
pub use net::{PhysicalNetwork, WalkOutcome};
pub use world::SimWorld;
